"""Exact (top-h) Voronoi cells through the kNN interface — paper §3.

The centre of the LR-LBS-AGG algorithm.  Given a tuple ``t`` returned by
some query, compute its top-h Voronoi cell *exactly* using nothing but
further kNN queries, per Theorem 1:

    the cell built from a site subset ``D' ∋ t`` equals the true cell
    iff every vertex of that cell answers only tuples of ``D'``.

The refinement loop therefore alternates between (a) building the cell
from all currently known sites and (b) querying its boundary vertices;
any unknown tuple an answer reveals shrinks the cell further, and each
query either confirms a vertex or reveals a tuple, so the loop
terminates.  The generalization to top-h uses the level-region
construction of :mod:`repro.geometry.arrangement` and the top-h prefix
form of the vertex test (a vertex passes iff the first h answers are all
known sites — see the proof in :func:`_vertex_passes`).

All four §3.2 error-reduction techniques plug in here:

* **Fast-Init** (§3.2.1): four fake corner sites bound the initial cell;
  if any fake edge survives to convergence the fakes are dropped and the
  loop resumes — exactness is never compromised.
* **Leverage history** (§3.2.2): the site set starts from every tuple
  location ever observed, not just this sample's.
* **Adaptive h** (§3.2.3): lives in :mod:`repro.core.variance`.
* **MC bounds** (§3.2.4): when successive refinements stop shrinking the
  measure by much, freeze the upper bound and hand over to
  :class:`repro.core.bounds.MonteCarloFinish`.

Max-radius services (§5.3): the base region is additionally clipped by a
regular 256-gon inscribed in the service disk around ``t`` — a documented
``O(1e-4)``-relative approximation (DESIGN.md §5) far below sampling
noise; all vertex tests then stay within service coverage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import (
    ConvexPolygon,
    HalfPlane,
    LevelRegion,
    Point,
    Rect,
    bisector_halfplane,
    build_level_region,
    distance,
)
from ..sampling import PointSampler
from .bounds import MonteCarloFinish
from .config import LrAggConfig
from .history import ObservationHistory

__all__ = ["CellOutcome", "TopHCellOracle"]

#: Rounding quantum for "vertex already tested" bookkeeping.
_KEY_QUANTUM = 1e-7

#: Sides of the inscribed polygon approximating the max-radius disk.
_DISK_NGON = 256


@dataclass
class CellOutcome:
    """Everything the estimator needs about one computed cell."""

    tid: int
    h: int
    region: LevelRegion
    measure: float          #: F-measure of the final (upper-bound) region
    inv_prob: float         #: unbiased estimate of 1 / p(t)
    exact: bool             #: True when the region is the exact cell
    mc_trials: int = 0


class TopHCellOracle:
    """Computes top-h Voronoi cells of returned tuples via the interface."""

    def __init__(
        self,
        history: ObservationHistory,
        sampler: PointSampler,
        config: LrAggConfig,
        rng: np.random.Generator,
    ):
        self.history = history
        self.sampler = sampler
        self.config = config
        self.rng = rng
        region = sampler.region
        self._base = ConvexPolygon.from_rect(region)
        self._scale = max(region.width, region.height)

    # ------------------------------------------------------------------
    def compute(self, t_id: int, t_loc: Point, h: int, init_radius: Optional[float] = None) -> CellOutcome:
        """Compute the top-h cell of tuple ``t`` (Algorithm 5 inner loop).

        ``init_radius`` seeds the Fast-Init fake box (typically a small
        multiple of the triggering answer's k-th distance).
        """
        cfg = self.config
        history = self.history
        if h > history.interface.k:
            raise ValueError("h cannot exceed the interface k")

        base = self._base_polygon(t_loc)
        known = dict(history.locations) if cfg.use_history else {}
        known[t_id] = t_loc
        fakes = self._fake_sites(t_loc, init_radius) if cfg.use_fast_init else {}

        tested_pass: set[tuple[int, int]] = set()
        prev_measure: Optional[float] = None
        region = self._build_region(t_id, t_loc, h, known, fakes, base)

        for _round in range(cfg.max_refine_rounds):
            new_info = False
            all_passed = True
            for v in region.boundary_vertices():
                key = self._key(v)
                if key in tested_pass:
                    continue
                answer = history.query(v)
                known_before = set(known)
                for res in answer.results:
                    if res.location is not None and res.tid not in known:
                        known[res.tid] = res.location
                        new_info = True
                if _vertex_passes(answer, h, known_before):
                    tested_pass.add(key)
                else:
                    all_passed = False
            if not new_info and all_passed:
                # Fakes must go when they still shape the cell — including
                # the degenerate case where the fake square misses the
                # base region entirely (tuple outside a sub-region base).
                if fakes and (region.is_empty() or self._has_fake_edge(region)):
                    fakes = {}
                    region = self._build_region(t_id, t_loc, h, known, fakes, base)
                    continue
                measure = self.sampler.measure_region(region.polygons())
                return CellOutcome(t_id, h, region, measure, _safe_inv(measure), exact=True)

            region = self._build_region(t_id, t_loc, h, known, fakes, base)

            if cfg.use_mc_bounds and not fakes:
                measure = self.sampler.measure_region(region.polygons())
                if (
                    prev_measure is not None
                    and measure > 0.0
                    and (prev_measure - measure) / measure <= cfg.mc_tightness
                ):
                    mc = MonteCarloFinish(
                        history, self.sampler, t_id, t_loc, h,
                        region.polygons(), self.rng,
                    )
                    out = mc.run()
                    return CellOutcome(
                        t_id, h, region, out.upper_measure, out.inv_prob,
                        exact=False, mc_trials=out.trials,
                    )
                prev_measure = measure

        # Safety valve: refinement budget exceeded — finish with MC, which
        # stays unbiased no matter how loose the upper bound is.
        mc = MonteCarloFinish(
            history, self.sampler, t_id, t_loc, h, region.polygons(), self.rng
        )
        out = mc.run()
        return CellOutcome(
            t_id, h, region, out.upper_measure, out.inv_prob,
            exact=False, mc_trials=out.trials,
        )

    # ------------------------------------------------------------------
    def history_region(self, t_loc: Point, h: int, locations: Optional[dict] = None) -> LevelRegion:
        """Upper-bound top-h region from history alone (no queries) —
        the §3.2.3 adaptive-h signal λ_h comes from its piece measures.

        ``locations`` may be a snapshot of past-only observations: the
        adaptive-h rule must not peek at the current sample's answer or
        Eq. 2 loses its unbiasedness (see lr_agg.py).
        """
        base = self._base_polygon(t_loc)
        known = dict(self.history.locations if locations is None else locations)
        known[-1] = t_loc
        return self._build_region(None, t_loc, h, known, {}, base, t_key=-1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _base_polygon(self, t_loc: Point) -> ConvexPolygon:
        """Construction base for the cell region.

        When the aggregation region is a sub-box of the service's world
        the tuple may sit *outside* it, and its cell restricted to the
        box can be disconnected.  Expanding the base to cover both the
        box and the tuple restores the star-shapedness (w.r.t. the
        tuple) that makes the subset BFS complete; the sampler's measure
        later clips back to the aggregation region.
        """
        region = self.sampler.region
        base = self._base
        if not region.contains(t_loc):
            margin = max(
                distance(t_loc, Point(x, y))
                for x in (region.x0, region.x1) for y in (region.y0, region.y1)
            ) * 1.01
            expanded = Rect(
                min(region.x0, t_loc.x - margin),
                min(region.y0, t_loc.y - margin),
                max(region.x1, t_loc.x + margin),
                max(region.y1, t_loc.y + margin),
            )
            base = ConvexPolygon.from_rect(expanded)
        max_radius = self.history.interface.max_radius
        if max_radius is None:
            return base
        return base.clip_many(_inscribed_ngon_halfplanes(t_loc, max_radius))

    def _fake_sites(self, t_loc: Point, init_radius: Optional[float]) -> dict:
        r = init_radius if init_radius and init_radius > 0 else self._scale / 50.0
        L = 2.0 * r  # fake sites at 2r put the fake bisectors at distance r
        return {
            ("fake", 0): Point(t_loc.x - L, t_loc.y),
            ("fake", 1): Point(t_loc.x + L, t_loc.y),
            ("fake", 2): Point(t_loc.x, t_loc.y - L),
            ("fake", 3): Point(t_loc.x, t_loc.y + L),
        }

    def _build_region(
        self,
        t_id,
        t_loc: Point,
        h: int,
        known: dict,
        fakes: dict,
        base: ConvexPolygon,
        t_key=None,
    ) -> LevelRegion:
        """Level region from the *pruned* site set (sound: a site whose
        bisector stays farther from ``t`` than every region vertex cannot
        affect the cell)."""
        t_key = t_id if t_key is None else t_key
        sites = [
            (tid, loc) for tid, loc in known.items()
            if tid != t_key and distance(loc, t_loc) > 0.0
        ]
        sites.sort(key=lambda item: distance(item[1], t_loc))
        fake_planes = [
            bisector_halfplane(t_loc, loc, label=label) for label, loc in fakes.items()
        ]

        take = min(len(sites), 24)
        while True:
            constraints = [
                bisector_halfplane(t_loc, loc, label=tid) for tid, loc in sites[:take]
            ] + fake_planes
            region = build_level_region(constraints, h - 1, base, seed=t_loc)
            reach = 0.0
            for v in region.boundary_vertices():
                reach = max(reach, distance(v, t_loc))
            needed = sum(
                1 for _tid, loc in sites if distance(loc, t_loc) <= 2.0 * reach + 1e-9
            )
            if needed <= take or take >= len(sites):
                return region
            take = min(len(sites), max(needed, take * 2))

    def _has_fake_edge(self, region: LevelRegion) -> bool:
        return any(
            isinstance(label, tuple) and label and label[0] == "fake"
            for _a, _b, label in region.boundary_edges()
        )

    def _key(self, v: Point) -> tuple[int, int]:
        q = _KEY_QUANTUM * self._scale
        return (round(v.x / q), round(v.y / q))


def _vertex_passes(answer, h: int, known_ids: set) -> bool:
    """Top-h form of the Theorem-1 vertex test.

    Claim: if every boundary vertex ``v`` of the cell built from ``D'``
    has its top-h answer contained in ``D'``, the cell is exact.  Proof
    sketch: suppose not — some vertex ``v`` of the ``D'`` cell lies
    outside the true cell, i.e. at least ``h`` tuples of ``D`` are closer
    to ``v`` than ``t``.  The nearest ``h`` of them are the true top-h at
    ``v``; were they all in ``D'``, the ``D'`` cell would already exclude
    ``v`` — contradiction.  Hence some top-h answer at ``v`` is new.
    """
    return all(res.tid in known_ids for res in answer.results[:h])


def _safe_inv(measure: float) -> float:
    if measure <= 0.0:
        raise ArithmeticError("exact cell has zero measure — degenerate geometry")
    return 1.0 / measure


def _inscribed_ngon_halfplanes(center: Point, radius: float, n: int = _DISK_NGON):
    """Half-planes of a regular n-gon inscribed in the disk (§5.3 clip)."""
    planes = []
    apothem = radius * math.cos(math.pi / n)
    for i in range(n):
        theta = 2.0 * math.pi * (i + 0.5) / n
        nx, ny = math.cos(theta), math.sin(theta)
        c = nx * center.x + ny * center.y + apothem
        planes.append(HalfPlane(nx, ny, c, label="service-disk"))
    return planes
