"""Adaptive choice of h — variance reduction with larger k (paper §3.2.3).

For each tuple ``ti`` returned at rank ``i`` the estimator may use any
top-h cell with ``h ≥ i``.  Larger h flattens the cell-size distribution
(lower variance) but costs more queries per cell.  The paper's rule:
compute ``λ_h(ti)`` — an *upper bound* on the top-h cell measure from
history alone (no queries) — and pick the largest ``h ∈ [2, k]`` with
``λ_h ≤ λ0``, else 1.  A large bound means either the cell is already
big (no variance to win) or the neighbourhood is unexplored (pinning the
cell would be expensive) — both argue for a small h.

Whatever rule fires, the estimator stays unbiased: Eq. 2 is unbiased for
*any* per-tuple h that does not depend on the current sample point, and
history is strictly past information.

``λ0``: the paper leaves it "pre-determined".  Default here is
``2 × (running mean of cell measures actually observed)``; before any
observation the rule degrades to h = 1.
"""

from __future__ import annotations

from typing import Optional

from ..geometry import Point
from ..stats import RunningStat
from .config import LrAggConfig
from .voronoi_oracle import TopHCellOracle

__all__ = ["AdaptiveHSelector"]


class AdaptiveHSelector:
    """Implements Algorithm 4 (Variance-Reduction)."""

    def __init__(self, oracle: TopHCellOracle, k: int, config: LrAggConfig):
        self.oracle = oracle
        self.k = k
        self.config = config
        self._observed = RunningStat()

    # ------------------------------------------------------------------
    def observe_measure(self, measure: float) -> None:
        """Feed back the measure of every cell actually computed."""
        if measure > 0.0:
            self._observed.push(measure)

    def _lambda0(self) -> Optional[float]:
        if self.config.lambda0 is not None:
            return self.config.lambda0
        if self._observed.n == 0:
            return None
        return 2.0 * self._observed.mean

    # ------------------------------------------------------------------
    def choose(self, t_loc: Point, locations: Optional[dict] = None) -> int:
        """h(ti) per Algorithm 4 (1 when adaptivity is off or starved).

        ``locations`` must be a snapshot of *pre-sample* history: h may
        depend on the past but not on the current sample's answer,
        otherwise the Eq. 2 unbiasedness argument breaks.
        """
        if not self.config.adaptive_h or self.k < 2:
            return min(self.config.h, self.k)
        lambda0 = self._lambda0()
        if lambda0 is None:
            return 1
        lambdas = self.history_lambdas(t_loc, locations)
        best = 1
        for h in range(2, self.k + 1):
            if lambdas[h] <= lambda0:
                best = h
        return best

    def history_lambdas(self, t_loc: Point, locations: Optional[dict] = None) -> dict[int, float]:
        """``λ_h`` for every h in [1, k] from one history-only region.

        One level-(k-1) construction yields all of them: the pieces are
        stratified by how many known sites are closer than ``t``, so
        ``λ_h`` is the measure of pieces with at most ``h - 1`` closer
        sites.
        """
        region = self.oracle.history_region(t_loc, self.k, locations)
        by_level: dict[int, float] = {lvl: 0.0 for lvl in range(self.k)}
        for subset, poly in region.pieces.items():
            by_level[len(subset)] += self.oracle.sampler.measure_polygon(poly)
        out: dict[int, float] = {}
        acc = 0.0
        for h in range(1, self.k + 1):
            acc += by_level.get(h - 1, 0.0)
            out[h] = acc
        return out
