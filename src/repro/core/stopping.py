"""First-class stopping rules for estimation runs.

The paper's experiments stop on one of two hard limits — a query budget
(the service rate limit, §2.1) or a sample count — while a production
deployment stops on *precision*: keep sampling until the confidence
interval is tight enough.  All three are expressed as
:class:`StoppingRule` objects, composable with ``|``::

    run(MaxQueries(5000) | TargetRelativeCI(0.05))

A rule sees the :class:`~repro.stats.Checkpoint` after every completed
sample and may additionally advertise how many more queries/samples it
will allow, which the batched executor uses to clamp prefetch sizes so
a batch never overshoots a hard limit.

Rules are serializable (:meth:`StoppingRule.to_dict` /
:func:`stopping_rule_from_dict`) so a paused run's checkpoint state can
carry its own stopping condition.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..stats import Checkpoint, z_value

__all__ = [
    "StoppingRule",
    "MaxQueries",
    "MaxSamples",
    "TargetRelativeCI",
    "AnyRule",
    "stopping_rule_from_dict",
]


class StoppingRule(abc.ABC):
    """Decides, after every completed sample, whether a run is done."""

    @abc.abstractmethod
    def should_stop(self, checkpoint: Checkpoint) -> bool:
        """True once the run has met this rule's condition."""

    def remaining_queries(self, checkpoint: Checkpoint) -> Optional[int]:
        """Queries this rule still allows (None = unbounded)."""
        return None

    def remaining_samples(self, checkpoint: Checkpoint) -> Optional[int]:
        """Samples this rule still allows (None = unbounded)."""
        return None

    def to_dict(self) -> dict:
        """JSON-serializable form (see :func:`stopping_rule_from_dict`)."""
        raise ValueError(f"{type(self).__name__} is not serializable")

    def __or__(self, other: "StoppingRule") -> "AnyRule":
        return AnyRule(self, other)


class MaxQueries(StoppingRule):
    """Stop once the run has spent ``limit`` interface queries."""

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("query limit must be non-negative")
        self.limit = limit

    def should_stop(self, checkpoint: Checkpoint) -> bool:
        return checkpoint.queries >= self.limit

    def remaining_queries(self, checkpoint: Checkpoint) -> Optional[int]:
        return max(self.limit - checkpoint.queries, 0)

    def to_dict(self) -> dict:
        return {"rule": "max_queries", "limit": self.limit}

    def __repr__(self) -> str:
        return f"MaxQueries({self.limit})"


class MaxSamples(StoppingRule):
    """Stop once the run has accumulated ``limit`` samples."""

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError("sample limit must be non-negative")
        self.limit = limit

    def should_stop(self, checkpoint: Checkpoint) -> bool:
        return checkpoint.samples >= self.limit

    def remaining_samples(self, checkpoint: Checkpoint) -> Optional[int]:
        return max(self.limit - checkpoint.samples, 0)

    def to_dict(self) -> dict:
        return {"rule": "max_samples", "limit": self.limit}

    def __repr__(self) -> str:
        return f"MaxSamples({self.limit})"


class TargetRelativeCI(StoppingRule):
    """Adaptive precision stop: CI half-width ≤ ``target`` × |estimate|.

    The normal-approximation interval at ``level`` must shrink to within
    the relative target before the rule fires; ``min_samples`` guards
    against lucky early stops while the variance estimate is still
    noise.  Pair it with a budget rule (``TargetRelativeCI(0.05) |
    MaxQueries(10_000)``) — on a hard aggregate the CI alone may never
    tighten within a feasible budget.
    """

    def __init__(self, target: float, level: float = 0.95, min_samples: int = 10):
        if target <= 0.0:
            raise ValueError("relative CI target must be positive")
        if min_samples < 2:
            raise ValueError("min_samples must be at least 2")
        z_value(level)  # validate the level eagerly
        self.target = target
        self.level = level
        self.min_samples = min_samples

    def should_stop(self, checkpoint: Checkpoint) -> bool:
        if checkpoint.samples < self.min_samples:
            return False
        if checkpoint.estimate == 0.0 or not checkpoint.sem < float("inf"):
            return False
        halfwidth = z_value(self.level) * checkpoint.sem
        return halfwidth <= self.target * abs(checkpoint.estimate)

    def to_dict(self) -> dict:
        return {
            "rule": "target_relative_ci",
            "target": self.target,
            "level": self.level,
            "min_samples": self.min_samples,
        }

    def __repr__(self) -> str:
        return f"TargetRelativeCI({self.target}, level={self.level}, min_samples={self.min_samples})"


class AnyRule(StoppingRule):
    """Composite: stop as soon as *any* member rule fires (``a | b``)."""

    def __init__(self, *rules: StoppingRule):
        flat: list[StoppingRule] = []
        for rule in rules:
            if isinstance(rule, AnyRule):
                flat.extend(rule.rules)
            else:
                flat.append(rule)
        if not flat:
            raise ValueError("AnyRule needs at least one rule")
        self.rules = tuple(flat)

    def should_stop(self, checkpoint: Checkpoint) -> bool:
        return any(rule.should_stop(checkpoint) for rule in self.rules)

    def remaining_queries(self, checkpoint: Checkpoint) -> Optional[int]:
        values = [r.remaining_queries(checkpoint) for r in self.rules]
        values = [v for v in values if v is not None]
        return min(values) if values else None

    def remaining_samples(self, checkpoint: Checkpoint) -> Optional[int]:
        values = [r.remaining_samples(checkpoint) for r in self.rules]
        values = [v for v in values if v is not None]
        return min(values) if values else None

    def to_dict(self) -> dict:
        return {"rule": "any", "rules": [r.to_dict() for r in self.rules]}

    def __repr__(self) -> str:
        return " | ".join(repr(r) for r in self.rules)


def stopping_rule_from_dict(data: dict) -> StoppingRule:
    """Rebuild a rule serialized with :meth:`StoppingRule.to_dict`."""
    kind = data.get("rule")
    if kind == "max_queries":
        return MaxQueries(data["limit"])
    if kind == "max_samples":
        return MaxSamples(data["limit"])
    if kind == "target_relative_ci":
        return TargetRelativeCI(
            data["target"], level=data.get("level", 0.95),
            min_samples=data.get("min_samples", 10),
        )
    if kind == "any":
        return AnyRule(*(stopping_rule_from_dict(d) for d in data["rules"]))
    raise ValueError(f"unknown stopping rule {kind!r}")


def legacy_rule(max_queries: Optional[int], n_samples: Optional[int]) -> StoppingRule:
    """The rule equivalent of the deprecated ``run(max_queries=...,
    n_samples=...)`` pair (at least one must be given)."""
    rules: list[StoppingRule] = []
    if max_queries is not None:
        rules.append(MaxQueries(max_queries))
    if n_samples is not None:
        rules.append(MaxSamples(n_samples))
    if not rules:
        raise ValueError("provide max_queries and/or n_samples")
    return rules[0] if len(rules) == 1 else AnyRule(*rules)
