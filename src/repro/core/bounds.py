"""Upper/lower Voronoi-cell bounds and the Monte-Carlo finish (paper §3.2.4).

During the Theorem-1 refinement loop the tentative region computed from
the observed tuples always *contains* the real (top-h) cell — an upper
bound.  Pinning down the exact cell can cost many further vertex queries
even when the bound is already tight.  The paper's trick: stop refining
and run geometric trials instead.

Sample ``x`` from the query density restricted to the upper-bound region
``V'``; the number of trials ``r`` until ``x`` lands in the *true* cell
satisfies ``E[r] = F(V') / F(V)``, so ``r / F(V')`` is an **unbiased**
estimate of ``1 / p(t)`` — no further refinement needed.

Two query-free short-cuts keep trials cheap:

* *lower-bound hit*: ``x`` is certainly inside the cell when the disk
  around ``x`` through ``t`` is covered by known disks and fewer than h
  observed tuples sit inside it (exact coverage test,
  :func:`repro.geometry.coverage.disk_covered_by_union`);
* otherwise one real query decides membership exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import Disk, Point, distance
from ..sampling import PointSampler, RestrictedSampler
from .history import ObservationHistory

__all__ = ["LowerBoundTester", "MonteCarloFinish", "McOutcome"]


class LowerBoundTester:
    """Query-free membership certificates for the top-h cell of ``t``."""

    def __init__(self, history: ObservationHistory, t_id: int, t_loc: Point, h: int):
        self.history = history
        self.t_id = t_id
        self.t_loc = t_loc
        self.h = h

    def certainly_inside(self, x: Point) -> bool:
        """True only when ``x ∈ V_h(t)`` is *provable* from history.

        Soundness argument: the known disks jointly certify that every
        tuple inside ``C(x, d(x,t))`` has been observed.  If that disk is
        covered and at most ``h - 1`` observed tuples lie strictly inside
        it, then no tuple — observed or not — can push ``t`` out of the
        top-h at ``x``.
        """
        d_t = distance(x, self.t_loc)
        if d_t <= 0.0:
            return True
        max_radius = self.history.interface.max_radius
        if max_radius is not None and d_t > max_radius:
            return False  # t would not be returned at x at all
        closer = 0
        for tid, loc in self.history.locations.items():
            if tid == self.t_id:
                continue
            if distance(x, loc) < d_t:
                closer += 1
                if closer >= self.h:
                    return False
        candidates = self.history.disks.near(x, d_t)
        if not candidates:
            return False
        return _covered(Disk(x, d_t), candidates)


def _covered(target: Disk, disks) -> bool:
    from ..geometry import disk_covered_by_union

    # Slack keeps the test conservative against float noise in radii.
    return disk_covered_by_union(target, disks, slack=1e-9 * max(1.0, target.radius))


@dataclass
class McOutcome:
    """Result of a Monte-Carlo finish."""

    inv_prob: float        #: unbiased estimate of 1 / p(t)
    trials: int            #: geometric trial count r
    queries_spent: int     #: real queries consumed (≤ trials)
    upper_measure: float   #: F(V') of the frozen upper-bound region


class MonteCarloFinish:
    """Geometric-trials estimator over a frozen upper-bound region."""

    def __init__(
        self,
        history: ObservationHistory,
        sampler: PointSampler,
        t_id: int,
        t_loc: Point,
        h: int,
        upper_polygons,
        rng: np.random.Generator,
        max_trials: int = 100_000,
    ):
        self.history = history
        self.sampler = sampler
        self.t_id = t_id
        self.t_loc = t_loc
        self.h = h
        self.rng = rng
        self.max_trials = max_trials
        self.upper_measure = sampler.measure_region(upper_polygons)
        self._restricted: Optional[RestrictedSampler] = (
            sampler.restricted(upper_polygons) if self.upper_measure > 0.0 else None
        )
        self._lower = LowerBoundTester(history, t_id, t_loc, h)

    def run(self) -> McOutcome:
        if self._restricted is None or self.upper_measure <= 0.0:
            raise ValueError("Monte-Carlo finish needs a positive upper-bound measure")
        queries = 0
        for r in range(1, self.max_trials + 1):
            x = self._restricted.sample(self.rng)
            if self._lower.certainly_inside(x):
                return McOutcome(r / self.upper_measure, r, queries, self.upper_measure)
            answer = self.history.query(x)
            queries += 1
            top_h = answer.results[: self.h]
            if any(res.tid == self.t_id for res in top_h):
                return McOutcome(r / self.upper_measure, r, queries, self.upper_measure)
        raise RuntimeError(
            "Monte-Carlo finish exceeded max_trials; upper bound far too loose"
        )
