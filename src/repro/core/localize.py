"""Tuple position inference over LNR interfaces (paper §4.3).

Even a rank-only service leaks exact tuple positions.  At any vertex
``o`` of the top-1 Voronoi cell of ``t`` three bisectors meet: the two
cell edges ``d1 = bis(t, t2)`` and ``d3 = bis(t, t3)``, plus
``d2 = bis(t2, t3)`` which also passes through ``o`` (all three tuples
are equidistant from ``o``).  Because a bisector through ``o`` halves the
angle between the rays to its two tuples, the direction from ``o`` to
``t`` is determined by the three edge directions alone:

    let θ_a, θ_b = angles of the two cell-edge directions at o
        γ        = interior angle (θ_b - θ_a, CCW)
        β        = angle of the line d2 (mod π)
    then the ray to t leaves o at   θ_a + β_a,
        where β_a = (θ_a + γ - β) mod π   (lies in (0, γ)).

(Derivation: reflecting the ray-to-t across each edge gives the rays to
t2/t3, and d2 is their internal bisector; DESIGN.md walks the algebra.)

``d2`` itself is recovered with one angular binary search on a small
circle around ``o`` — the transition between the ``t2``-zone and the
``t3``-zone.  Two vertices give two rays; their intersection is ``t``.

Against obfuscating services (WeChat) the method converges to the
*effective* position, so the residual error equals the obfuscation
radius — exactly the Fig-21 phenomenology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..geometry import Point, cross, distance, normalize
from .config import LnrAggConfig
from .history import ObservationHistory
from .lnr_cell import LnrCellOracle, LnrCellOutcome

__all__ = ["LocalizationResult", "TupleLocalizer"]

_TWO_PI = 2.0 * math.pi


@dataclass
class LocalizationResult:
    tid: int
    location: Point
    #: Number of vertex-ray constructions that agreed.
    rays_used: int
    fallback: bool


class TupleLocalizer:
    """Infers tuple locations through a rank-only interface."""

    def __init__(self, history: ObservationHistory, cell_oracle: LnrCellOracle,
                 config: Optional[LnrAggConfig] = None):
        self.history = history
        self.oracle = cell_oracle
        self.config = config if config is not None else cell_oracle.config
        region = cell_oracle.sampler.region
        self._scale = max(region.width, region.height)

    # ------------------------------------------------------------------
    def locate(self, t_id: int, q0: Point, cell: Optional[LnrCellOutcome] = None) -> LocalizationResult:
        """Infer the position of tuple ``t_id`` (seen in the answer at
        ``q0``).  ``cell`` may pass in an already-computed top-1 cell."""
        if cell is None:
            cell = self.oracle.compute(t_id, q0, h=1)
        poly = cell.region.pieces.get(frozenset())
        if poly is None or len(poly.vertices) < 3:
            return LocalizationResult(t_id, q0, 0, fallback=True)

        rays: list[tuple[Point, Point]] = []
        n = len(poly.vertices)
        for i in range(n):
            if len(rays) >= 4:
                break
            ray = self._vertex_ray(cell, poly, i, t_id)
            if ray is not None:
                rays.append(ray)
        if len(rays) < 2:
            # Too few usable vertices (cell hugging the bounding box, or
            # failed d2 walks): the centroid bounds the error by the cell
            # radius — the long tail of the paper's Fig. 21.
            centroid = poly.centroid()
            return LocalizationResult(t_id, centroid, len(rays), fallback=True)

        # Candidate positions: pairwise ray intersections that land inside
        # the cell (t must lie in its own Voronoi cell).  With 3+ rays,
        # prefer the candidate that agrees best with every ray — a single
        # bad d2-search then gets outvoted.
        tol = 1e-4 * self._scale
        candidates: list[Point] = []
        for i in range(len(rays)):
            for j in range(i + 1, len(rays)):
                hit = _ray_intersection(rays[i], rays[j])
                if hit is not None and poly.contains(hit, tol=tol):
                    candidates.append(hit)
        if not candidates:
            centroid = poly.centroid()
            return LocalizationResult(t_id, centroid, len(rays), fallback=True)
        best = min(candidates, key=lambda p: _ray_disagreement(p, rays))
        return LocalizationResult(t_id, best, len(rays), fallback=False)

    # ------------------------------------------------------------------
    def _vertex_ray(self, cell: LnrCellOutcome, poly, i: int, t_id: int) -> Optional[tuple[Point, Point]]:
        """The ray from vertex ``i`` toward ``t`` (None if unusable)."""
        n = len(poly.vertices)
        o = poly.vertices[i]
        v_next = poly.vertices[(i + 1) % n]
        v_prev = poly.vertices[(i - 1) % n]
        lbl_next = self._edge_tid(cell, poly.edge_labels[i])
        lbl_prev = self._edge_tid(cell, poly.edge_labels[(i - 1) % n])
        if lbl_next is None or lbl_prev is None or lbl_next == lbl_prev:
            return None  # bounding-box edge or unidentified neighbour

        e_a = normalize(v_next - o)     # along the edge whose neighbour is lbl_next
        e_b = normalize(v_prev - o)     # along the edge whose neighbour is lbl_prev
        theta_a = math.atan2(e_a.y, e_a.x)
        gamma = (math.atan2(e_b.y, e_b.x) - theta_a) % _TWO_PI
        if not 1e-3 < gamma < math.pi - 1e-3:
            return None  # degenerate or reflex interior angle

        radius = 0.25 * min(distance(o, v_next), distance(o, v_prev))
        radius = max(radius, 4.0 * self.oracle._delta)
        beta = self._find_d2_angle(o, radius, theta_a, gamma, lbl_next, lbl_prev)
        if beta is None:
            return None
        beta_a = (theta_a + gamma - beta) % math.pi
        if not 1e-3 < beta_a < gamma - 1e-3:
            return None
        rho = theta_a + beta_a
        return o, Point(math.cos(rho), math.sin(rho))

    def _edge_tid(self, cell: LnrCellOutcome, label) -> Optional[int]:
        if isinstance(label, int) and 0 <= label < len(cell.region.constraints):
            user = cell.region.constraints[label].label
            return user if isinstance(user, int) else None
        return None

    # ------------------------------------------------------------------
    def _find_d2_angle(
        self, o: Point, radius: float, theta_a: float, gamma: float,
        id_a: int, id_b: int,
    ) -> Optional[float]:
        """Angle (mod π) of the bisector of the two neighbour tuples.

        Walks the circle of ``radius`` around ``o`` in the *exterior*
        sector: just outside edge a the top answer is ``id_a``, just
        outside edge b it is ``id_b``; the transition between those zones
        is ``d2``.
        """
        def top1(phi: float) -> Optional[int]:
            p = Point(o.x + radius * math.cos(phi), o.y + radius * math.sin(phi))
            ans = self.history.query(p)
            top = ans.top()
            return top.tid if top is not None else None

        theta_b = theta_a + gamma
        exterior = _TWO_PI - gamma  # from theta_b CCW to theta_a + 2π
        phi_a = phi_b = None
        for frac in (0.08, 0.2, 0.4):
            if phi_a is None and top1(theta_a - frac * exterior) == id_a:
                phi_a = theta_a - frac * exterior
            if phi_b is None and top1(theta_b + frac * exterior) == id_b:
                phi_b = theta_b + frac * exterior
        if phi_a is None or phi_b is None:
            return None

        # Binary search the transition on the arc from phi_b (id_b zone,
        # CCW) toward phi_a (≡ phi_a + 2π side).
        lo = phi_b                    # id_b zone
        hi = phi_a + _TWO_PI          # id_a zone
        if hi <= lo:
            return None
        tol = max(self.oracle._delta / radius, 1e-6)
        while hi - lo > tol:
            mid = (lo + hi) / 2.0
            tid = top1(mid)
            if tid == id_b:
                lo = mid
            else:
                hi = mid
        return ((lo + hi) / 2.0) % math.pi


def _ray_disagreement(p: Point, rays: list[tuple[Point, Point]]) -> float:
    """Sum of perpendicular distances from ``p`` to every ray's line."""
    total = 0.0
    for origin, direction in rays:
        diff = p - origin
        total += abs(cross(diff, direction))
    return total


def _ray_intersection(r1: tuple[Point, Point], r2: tuple[Point, Point]) -> Optional[Point]:
    """Intersection of two rays (origin, unit direction); None when
    parallel or behind either origin."""
    (o1, d1), (o2, d2) = r1, r2
    denom = cross(d1, d2)
    if abs(denom) < 1e-12:
        return None
    diff = o2 - o1
    t1 = cross(diff, d2) / denom
    t2 = cross(diff, d1) / denom
    if t1 <= 0.0 or t2 <= 0.0:
        return None
    return Point(o1.x + t1 * d1.x, o1.y + t1 * d1.y)
