"""LR-LBS-AGG — unbiased aggregate estimation over LR-LBS (Algorithm 5).

Each *sample* is one random query point ``q`` drawn from the configured
density.  Every returned tuple ``ti`` (rank i) for which the chosen
``h(ti) ≥ i`` contributes ``Q(ti) / p(ti)`` where ``p(ti)`` is the exact
(or MC-estimated, §3.2.4) measure of its top-h Voronoi cell:

    estimate per sample  =  Σ_{ti : i ≤ h(ti)}  Q(ti) · inv_prob(ti)

(the paper's Eq. 2; the printed index condition ``h(ti) ≤ i`` is a typo —
``q`` lies in ``V_h(ti)`` precisely when ``i ≤ h(ti)``, see DESIGN.md).

The sample mean of these contributions is a completely unbiased COUNT or
SUM estimate; AVG is the ratio of the SUM and COUNT streams over shared
samples.  Selection conditions: pass-through conditions should be applied
by handing a ``interface.filtered(...)`` view to this class; post-process
conditions ride along in the :class:`~repro.core.aggregates.AggregateQuery`.

Exact cells are cached across samples (their measure is a fixed quantity;
re-deriving it would waste budget) — another face of "leveraging
history"; MC inv-prob estimates are cached as well, which preserves
unbiasedness because the cached randomness is independent of later sample
indicators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry import Point
from ..lbs import KnnInterface
from ..sampling import PointSampler
from ..stats import RatioStat, RunningStat, TracePoint
from ._driver import EstimationDriver
from .aggregates import AggregateQuery
from .config import LrAggConfig
from .history import ObservationHistory
from .variance import AdaptiveHSelector
from .voronoi_oracle import TopHCellOracle

__all__ = ["LrLbsAgg"]


class LrLbsAgg(EstimationDriver):
    """The paper's LR-LBS-AGG estimator."""

    kind = "lr"

    def __init__(
        self,
        interface: KnnInterface,
        sampler: PointSampler,
        query: AggregateQuery,
        config: Optional[LrAggConfig] = None,
        seed: int = 0,
    ):
        if not interface.returns_location:
            raise ValueError("LrLbsAgg requires a location-returning interface")
        self.interface = interface
        self.sampler = sampler
        self.query = query
        self.config = config if config is not None else LrAggConfig()
        self.rng = np.random.default_rng(seed)
        self.history = ObservationHistory(interface, enabled=self.config.use_history)
        # The oracle's randomness (MC-bound probes) runs on its own
        # stream: the sample-point stream then advances identically
        # whether points are drawn one at a time or prefetched in
        # batches, which makes batched estimates bit-identical to
        # sequential ones.  (seed=None means entropy-seeded, as for
        # the main stream.)
        self.oracle_rng = np.random.default_rng(
            [seed, 0x0AC1E] if seed is not None else None
        )
        self.oracle = TopHCellOracle(self.history, sampler, self.config, self.oracle_rng)
        self.selector = AdaptiveHSelector(self.oracle, interface.k, self.config)
        self._stat = RunningStat()
        self._ratio = RatioStat()
        self._trace: list[TracePoint] = []
        self._cell_cache: dict[tuple[int, int], float] = {}
        self._h_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _sample_at(self, q: Point) -> tuple[float, float]:
        """Evaluate the sample at a pre-drawn query point."""
        self.history.reset_sample()
        # Snapshot past-only observations: the adaptive-h rule may not see
        # the current answer (see the unbiasedness note in variance.py).
        past_locations = dict(self.history.locations) if self.config.adaptive_h else None
        answer = self.history.query(q)
        num = 0.0
        den = 0.0
        if answer.is_empty():
            return num, den  # max-radius miss contributes 0 (§5.3)
        init_radius = self._init_radius(answer)
        for res in answer.results:
            # h per tuple is frozen at first sight (cheap, and the Eq. 2
            # argument only needs h to be independent of future samples).
            h = self._h_cache.get(res.tid)
            if h is None:
                h = self.selector.choose(res.location, past_locations)
                self._h_cache[res.tid] = h
            if res.rank > h:
                continue
            inv_prob = self._inv_prob(res.tid, res.location, h, init_radius)
            num += self.query.numerator(res.attrs, res.location) * inv_prob
            den += self.query.denominator(res.attrs, res.location) * inv_prob
        return num, den

    def _inv_prob(self, tid: int, loc: Point, h: int, init_radius: Optional[float]) -> float:
        key = (tid, h)
        if self.config.use_history and key in self._cell_cache:
            return self._cell_cache[key]
        outcome = self.oracle.compute(tid, loc, h, init_radius)
        if outcome.exact:
            self.selector.observe_measure(outcome.measure)
        if self.config.use_history:
            self._cell_cache[key] = outcome.inv_prob
        return outcome.inv_prob

    def _init_radius(self, answer) -> Optional[float]:
        last = answer.results[-1]
        if last.distance is not None and last.distance > 0.0:
            return self.config.fast_init_factor * last.distance
        if self.interface.max_radius is not None:
            return self.interface.max_radius
        return None

    # ------------------------------------------------------------------
    def _effective_batch_size(self, batch_size: int) -> int:
        """Prefetch is skipped — batches degrade to size 1 — when history
        is off (the ablation variants model an estimator that retains
        nothing, so paying for whole batches up front would distort
        their per-sample cost accounting).  Adaptive h batches soundly:
        the history's lazy-reveal split keeps prefetched answers out of
        the past-only snapshot until each sample is evaluated."""
        if not self.config.use_history:
            return 1
        return batch_size

    # ------------------------------------------------------------------
    def _state_extra(self) -> dict:
        return {
            "history": self.history.state_dict(),
            "h_cache": [[tid, h] for tid, h in self._h_cache.items()],
            "cell_cache": [[tid, h, v] for (tid, h), v in self._cell_cache.items()],
            "selector_observed": self.selector._observed.state_dict(),
            "oracle_rng": self.oracle_rng.bit_generator.state,
        }

    def _load_state_extra(self, state: dict) -> None:
        self.history.load_state_dict(state["history"])
        self._h_cache = {int(tid): int(h) for tid, h in state["h_cache"]}
        self._cell_cache = {(int(tid), int(h)): v for tid, h, v in state["cell_cache"]}
        self.selector._observed = RunningStat.from_state(state["selector_observed"])
        self.oracle_rng.bit_generator.state = state["oracle_rng"]
