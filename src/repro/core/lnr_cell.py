"""LNR Voronoi-cell discovery from ranked answers (paper §4.1-4.2).

Workflow for a tuple ``t`` returned (at rank ≤ h) by a query at ``q0``:

1. **Initial edges** — binary-search along the four cardinal rays from
   ``q0`` (Algorithm 6 steps 3-4); each transition yields an estimated
   bisector line oriented toward the inside, accurate to the Appendix-A
   precision ε (δ and δ' derived from ε per Eq. 9).
2. **Theorem-1 loop** — build the cell from the estimated bisectors as an
   arrangement level region (handles the concave top-k case), probe its
   vertices and piece centroids (pulled inward by ~ε, since estimated
   edges wobble), and binary-search toward any failing probe to uncover
   the missing edge.
3. **Concavity sweep** (k > 1, §4.2) — by Lemma 1 every *inward* vertex
   is formed by two ``(t, ·)`` bisectors, so the loop additionally
   enumerates the bisector of ``t`` and every tuple co-listed with it:
   two probed points that disagree on "is ``t'`` ranked above ``t``"
   bracket that bisector, and one binary search pins it down.
4. **Verification pass** — uniform membership spot-checks inside the
   final region; a failure exposes an over-coverage pocket and re-enters
   the loop.  This bounds the residual area error stochastically on top
   of the deterministic ε guarantee of the edges.

The resulting cell is correct up to ε; the estimator bias this induces is
bounded by Theorem 2 and shrinks arbitrarily as ε → 0 at O(log 1/ε)
query cost per edge (Corollary 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..geometry import (
    ConvexPolygon,
    HalfPlane,
    LevelRegion,
    Point,
    build_level_region,
    distance,
    normalize,
)
from ..lbs import QueryAnswer
from ..sampling import PointSampler
from .config import LnrAggConfig
from .edge_search import estimate_boundary_line, ray_exit
from .history import ObservationHistory

__all__ = ["LnrCellOutcome", "LnrCellOracle"]

_CARDINALS = (Point(1.0, 0.0), Point(-1.0, 0.0), Point(0.0, 1.0), Point(0.0, -1.0))

#: Edge-search launches allowed per refinement round (cost valve).
_MAX_SEARCHES_PER_ROUND = 8

#: Membership spot-checks in the final verification pass.
_VERIFY_SAMPLES = 8


@dataclass
class LnrCellOutcome:
    """An estimated top-h cell of an LNR tuple."""

    tid: int
    h: int
    region: LevelRegion
    measure: float
    inv_prob: float
    #: constraint key -> displacing tuple id (int keys only), teaching
    #: localization which neighbour sits behind each edge.
    edge_neighbours: dict = field(default_factory=dict)


@dataclass
class _Edge:
    halfplane: HalfPlane
    two_point: bool


class LnrCellOracle:
    """Discovers top-h cells through a rank-only interface."""

    def __init__(self, history: ObservationHistory, sampler: PointSampler, config: LnrAggConfig):
        self.history = history
        self.sampler = sampler
        self.config = config
        region = sampler.region
        self._rect = region
        self._base = ConvexPolygon.from_rect(region)
        self._delta, self._delta_prime = config.derived_deltas(region.width, region.height)
        self._eps = config.edge_error * max(region.width, region.height)
        self._rng = np.random.default_rng(0x5EED)

    # ------------------------------------------------------------------
    def compute(self, t_id: int, q0: Point, h: int) -> LnrCellOutcome:
        cfg = self.config
        probes: list[tuple[Point, QueryAnswer]] = []

        def probe(x: Point) -> QueryAnswer:
            ans = self.history.query(x)
            probes.append((x, ans))
            return ans

        def member(x: Point) -> bool:
            return any(res.tid == t_id for res in probe(x).results[:h])

        def tops(x: Point) -> frozenset:
            return frozenset(res.tid for res in probe(x).results[:h])

        if not member(q0):
            raise ValueError(f"tuple {t_id} not in the top-{h} answer at the seed point")

        edges: dict[object, _Edge] = {}
        revisions: dict[object, int] = {}
        placeholder = itertools.count()

        def add_edge(est, anchor: Point) -> bool:
            outside_ids = est.token if isinstance(est.token, frozenset) else frozenset()
            u = _displacing_id(t_id, tops(est.inside_hint), outside_ids)
            key = u if u is not None else ("edge", next(placeholder))
            old = edges.get(key)
            if old is not None and old.two_point and not est.two_point:
                return False  # never downgrade a two-point estimate
            if revisions.get(key, 0) >= 8:
                return False  # stop re-estimation ping-pong on one edge
            revisions[key] = revisions.get(key, 0) + 1
            hp = HalfPlane.from_point_direction(
                est.point, est.direction, inside=anchor, label=key
            )
            edges[key] = _Edge(hp, est.two_point)
            return True

        def search_toward(target: Point) -> bool:
            est = estimate_boundary_line(
                member, q0, target, self._delta, self._delta_prime,
                self._rect, matcher=tops,
            )
            if est is None:
                return False
            return add_edge(est, q0)

        # 1. Initial edges along the four cardinal rays.
        for direction in _CARDINALS:
            far = ray_exit(q0, direction, self._rect)
            est = estimate_boundary_line(
                member, q0, far, self._delta, self._delta_prime, self._rect, matcher=tops
            )
            if est is not None:
                add_edge(est, q0)

        # 2/3. Theorem-1 loop with the concavity sweep.
        attempts: dict[tuple[int, int], int] = {}
        region = self._region(edges, h, q0)
        for _round in range(cfg.max_refine_rounds):
            progress = False
            all_pass = True
            searches = 0
            for target in self._probe_points(region, q0):
                key = self._vkey(target)
                if member(target):
                    continue
                if attempts.get(key, 0) >= 2 or searches >= _MAX_SEARCHES_PER_ROUND:
                    continue  # accept ε-level disagreement / rate-limit
                attempts[key] = attempts.get(key, 0) + 1
                all_pass = False
                searches += 1
                if search_toward(target):
                    progress = True
            if h > 1 and self._concavity_sweep(t_id, h, edges, probes, probe):
                progress = True
                all_pass = False
            if all_pass and not progress:
                # 4. Verification pass: spot-check the interior (richer
                # top-h cells have more pieces where pockets can hide).
                region = self._region(edges, h, q0)
                bad = self._verify(region, member, _VERIFY_SAMPLES * h)
                if bad is None:
                    break
                if not search_toward(bad):
                    break
            region = self._region(edges, h, q0)

        region = self._region(edges, h, q0)
        measure = self.sampler.measure_region(region.polygons())
        if measure <= 0.0:
            raise ArithmeticError("estimated LNR cell has zero measure")
        neighbours = {k: k for k in edges if isinstance(k, int)}
        return LnrCellOutcome(t_id, h, region, measure, 1.0 / measure, neighbours)

    # ------------------------------------------------------------------
    def _probe_points(self, region: LevelRegion, q0: Point):
        """Membership test points: piece vertices pulled toward their
        piece centroid, plus the centroids themselves.

        Pulling matters twice over: estimated edges wobble by ~ε, and
        exact cell vertices are ties between tuples — a query right on
        one is undefined behaviour the paper's general-position assumption
        rules out.
        """
        seen: set[tuple[int, int]] = set()
        for piece in region.polygons():
            c = piece.centroid()
            if piece.contains(c):
                key = self._vkey(c)
                if key not in seen:
                    seen.add(key)
                    yield c
            for v in piece.vertices:
                pulled = self._pull(v, c)
                key = self._vkey(pulled)
                if key not in seen:
                    seen.add(key)
                    yield pulled

    def _verify(self, region: LevelRegion, member, samples: int = _VERIFY_SAMPLES) -> Optional[Point]:
        """Uniform spot-checks; returns a failing point or None."""
        polys = [p for p in region.polygons() if not p.is_empty()]
        if not polys:
            return None
        areas = [p.area() for p in polys]
        total = sum(areas)
        for _ in range(samples):
            u = self._rng.random() * total
            acc = 0.0
            chosen = polys[-1]
            for poly, w in zip(polys, areas):
                acc += w
                if u <= acc:
                    chosen = poly
                    break
            x = chosen.sample(self._rng)
            if not member(x):
                return x
        return None

    # ------------------------------------------------------------------
    def _region(self, edges: dict, h: int, seed: Point) -> LevelRegion:
        planes = [e.halfplane for e in edges.values()]
        try:
            return build_level_region(planes, h - 1, self._base, seed)
        except ValueError:
            # Estimated edges can momentarily exclude the seed; drop the
            # most violated constraints until the seed fits again.
            scored = sorted(planes, key=lambda hp: hp.value(seed) / hp.scale())
            while scored and scored[-1].value(seed) > 0.0:
                scored.pop()
                try:
                    return build_level_region(scored, h - 1, self._base, seed)
                except ValueError:
                    continue
            return build_level_region([], h - 1, self._base, seed)

    def _pull(self, v: Point, toward: Point) -> Point:
        d = distance(v, toward)
        if d <= 0.0:
            return v
        pull = min(self.config.vertex_pull * self._eps, 0.5 * d)
        step = normalize(toward - v)
        return Point(v.x + pull * step.x, v.y + pull * step.y)

    def _vkey(self, v: Point) -> tuple[int, int]:
        q = 1e-6 * max(self._rect.width, self._rect.height)
        return (round(v.x / q), round(v.y / q))

    # ------------------------------------------------------------------
    def _concavity_sweep(self, t_id: int, h: int, edges: dict, probes, probe) -> bool:
        """§4.2: enumerate the (t, t') bisector for every co-listed t'.

        Returns True when a new bisector was added.
        """
        colisted: set[int] = set()
        inside_points: list[tuple[Point, QueryAnswer]] = []
        for x, ans in probes:
            rank = ans.rank_of(t_id)
            if rank is not None and rank <= h:
                inside_points.append((x, ans))
                colisted.update(tid for tid in ans.tids() if tid != t_id)

        added = False
        for u in sorted(colisted):
            if u in edges:
                continue
            # Two inside points disagreeing on "u ranked above t" bracket
            # the (t, u) bisector.
            above = [x for x, ans in inside_points if ans.ranked_before(u, t_id)]
            below = [x for x, ans in inside_points if not ans.ranked_before(u, t_id)]
            if not above or not below:
                continue
            # Maximize the bracket length: short brackets force the
            # perpendicular fallback (see edge_search) and lose accuracy.
            anchor, far = max(
                ((b, a) for b in below[:20] for a in above[:20]),
                key=lambda pair: distance(pair[0], pair[1]),
            )

            def t_side(x: Point, _u=u) -> bool:
                return not probe(x).ranked_before(_u, t_id)

            def presence(x: Point, _u=u) -> tuple[bool, bool]:
                ans = probe(x)
                return (ans.contains(t_id), ans.contains(_u))

            est = estimate_boundary_line(
                t_side, anchor, far, self._delta, self._delta_prime, self._rect,
                matcher=presence,
            )
            if est is None:
                continue
            # Accept only genuine (t, u) flips.  Two legitimate patterns:
            # an internal rank swap (both present on both sides) or a cell
            # boundary crossing (t k-th inside, u k-th outside).  Both
            # require t present on the inside and u present on the
            # outside; anything else is a presence boundary of u against
            # some third tuple, and labelling it (t, u) poisons the cell.
            token_ok = isinstance(est.token, tuple) and est.token[1]
            if not token_ok or not presence(est.inside_hint)[0]:
                continue
            edges[u] = _Edge(
                HalfPlane.from_point_direction(est.point, est.direction, inside=anchor, label=u),
                est.two_point,
            )
            added = True
        return added


def _displacing_id(t_id: int, inside_ids: frozenset, outside_ids: frozenset) -> Optional[int]:
    """The tuple that replaces ``t`` across an edge, when identifiable."""
    gained = [u for u in outside_ids - inside_ids if u != t_id]
    if len(gained) == 1:
        return gained[0]
    if gained:
        return min(gained)
    return None
