"""Observation history shared across samples (paper §3.2.2).

Static LBS answers never change, so everything a query reveals stays
true: tuple locations (LR only), full answers at exact points, and —
crucially for the §3.2.4 lower bound — *known disks*: a query at ``p``
whose k-th (i.e. last) answer lies at distance ρ certifies that every
tuple within ρ of ``p`` was returned, hence is known.  When fewer than k
tuples come back because of a ``max_radius`` service limit, the certified
radius is ``max_radius`` itself.

:class:`ObservationHistory` also routes queries through a cache keyed on
the exact location so repeated Theorem-1 vertex tests are free, which is
legitimate "leveraging history" and is counted the way the paper counts
queries (only network calls cost budget).

The history is split into two views of a batch:

* **draw points now** — :meth:`ObservationHistory.prefetch` pays for a
  whole batch of answers through the interface's vectorized
  ``query_batch`` and *stages* them, without absorbing anything;
* **reveal answers lazily** — :meth:`ObservationHistory.query` consumes
  a staged answer the moment its sample is actually evaluated, only then
  recording what it reveals.

The split makes a batched run's knowledge at every sample identical to
the unbatched run's — which is what lets the LR adaptive-h rule (whose
λ_h signal may only see *past* answers) prefetch batches soundly, and
what makes batched estimates bit-identical to sequential ones.
:meth:`query_batch` remains the absorb-immediately form for callers that
want a batch's knowledge up front.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Optional

from ..geometry import Disk, Point, distance
from ..lbs import BudgetExhausted, KnnInterface, QueryAnswer

__all__ = ["DiskLedger", "ObservationHistory"]


class DiskLedger:
    """Known (fully observed) disks with a coarse spatial grid for lookup."""

    def __init__(self, cell_size: float):
        if cell_size <= 0.0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self._buckets: dict[tuple[int, int], list[Disk]] = defaultdict(list)
        self.max_radius = 0.0
        self.count = 0

    def _key(self, p: Point) -> tuple[int, int]:
        return (int(math.floor(p.x / self.cell_size)), int(math.floor(p.y / self.cell_size)))

    def add(self, disk: Disk) -> None:
        if disk.radius <= 0.0:
            return
        self._buckets[self._key(disk.center)].append(disk)
        self.max_radius = max(self.max_radius, disk.radius)
        self.count += 1

    def near(self, center: Point, radius: float) -> list[Disk]:
        """All stored disks that might intersect ``Disk(center, radius)``."""
        reach = radius + self.max_radius
        i0 = int(math.floor((center.x - reach) / self.cell_size))
        i1 = int(math.floor((center.x + reach) / self.cell_size))
        j0 = int(math.floor((center.y - reach) / self.cell_size))
        j1 = int(math.floor((center.y + reach) / self.cell_size))
        out: list[Disk] = []
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                for d in self._buckets.get((i, j), ()):
                    if distance(d.center, center) <= radius + d.radius:
                        out.append(d)
        return out


class ObservationHistory:
    """Everything learned from the interface so far."""

    def __init__(self, interface: KnnInterface, enabled: bool = True):
        self.interface = interface
        #: When False the history is wiped after every sample (the
        #: LR-LBS-AGG-0/1 ablation variants).
        self.enabled = enabled
        self.locations: dict[int, Point] = {}
        self.attrs: dict[int, dict] = {}
        region = interface.region
        self.disks = DiskLedger(cell_size=max(region.width, region.height) / 64.0)
        self._cache: dict[tuple[float, float], QueryAnswer] = {}
        #: Paid-for answers not yet revealed (see :meth:`prefetch`).
        self._staged: dict[tuple[float, float], QueryAnswer] = {}

    # ------------------------------------------------------------------
    @property
    def queries_used(self) -> int:
        return self.interface.queries_used

    def known_ids(self) -> set[int]:
        return set(self.attrs)

    def known_locations(self) -> dict[int, Point]:
        return dict(self.locations)

    # ------------------------------------------------------------------
    def query(self, point: Point) -> QueryAnswer:
        """Issue (or replay) a query and absorb everything it reveals.

        A staged answer (paid for by :meth:`prefetch`) is *revealed*
        here: recorded into the history at the moment its sample is
        evaluated, exactly when an unbatched run would have learned it.
        """
        key = (point.x, point.y)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        answer = self._staged.pop(key, None)
        if answer is None:
            answer = self.interface.query(point)
        # Cache under the *queried* point too: the interface's snapped
        # cache may return an answer computed for a nearby exact point
        # (answer.query != point), and record() alone would key only by
        # answer.query — the repeat query would then re-record and pile
        # up duplicate known-disks.
        self._cache[key] = answer
        self.record(answer)
        return answer

    def prefetch(self, points: Iterable[Point]) -> None:
        """Draw-points-now half of the lazy-reveal split.

        Pays for every genuinely new point through one vectorized
        ``query_batch`` call, then stages the answers *without*
        recording them — nothing is revealed until :meth:`query`
        consumes each point.  When the budget cannot cover the whole
        batch, exactly the affordable prefix is queried and staged (the
        answers survive regardless of the interface cache's capacity)
        before :class:`~repro.lbs.BudgetExhausted` is raised — the same
        points a sequential loop would have answered before hitting the
        first unpayable one.
        """
        pts = []
        seen = set()
        for p in points:
            p = Point(*p)
            key = (p.x, p.y)
            if key not in self._cache and key not in self._staged and key not in seen:
                seen.add(key)
                pts.append(p)
        if not pts:
            return
        paid = self.interface.affordable_prefix(pts)
        if paid:
            for p, answer in zip(pts[:paid], self.interface.query_batch(pts[:paid])):
                self._staged[(p.x, p.y)] = answer
        if paid < len(pts):
            raise BudgetExhausted(self.interface.budget.limit)

    def query_batch(self, points: Iterable[Point]) -> list[QueryAnswer]:
        """Issue (or replay) a batch of queries through one engine call.

        Unseen points go to :meth:`KnnInterface.query_batch` together —
        the vectorized hot path — and every returned answer is absorbed.
        On :class:`~repro.lbs.BudgetExhausted` the affordable prefix has
        already been paid and cached by the interface, so re-querying
        those points later is free; the exception still propagates, as a
        sequential loop's would.
        """
        pts = [Point(*p) for p in points]
        missing = []
        seen = set()
        for p in pts:
            key = (p.x, p.y)
            if key in self._staged:
                # Reveal exactly like query(): cache under the requested
                # key too (the staged answer may carry a snapped
                # neighbour's query point), so the point never re-enters
                # the miss list and never re-records.
                answer = self._staged.pop(key)
                self._cache[key] = answer
                self.record(answer)
            if key not in self._cache and key not in seen:
                seen.add(key)
                missing.append(p)
        if missing:
            answers = self.interface.query_batch(missing)
            for p, answer in zip(missing, answers):
                self._cache[(p.x, p.y)] = answer
                self.record(answer)
        return [self._cache[(p.x, p.y)] for p in pts]

    def record(self, answer: QueryAnswer) -> None:
        """Absorb an answer obtained elsewhere."""
        self._cache[(answer.query.x, answer.query.y)] = answer
        for r in answer.results:
            self.attrs.setdefault(r.tid, dict(r.attrs))
            if r.location is not None:
                self.locations[r.tid] = r.location
        radius = self._certified_radius(answer)
        if radius is not None and radius > 0.0:
            self.disks.add(Disk(answer.query, radius))

    def _certified_radius(self, answer: QueryAnswer) -> Optional[float]:
        """Radius around the query point within which *all* tuples are
        among the returned (None when nothing can be certified)."""
        if not self.interface.nearest_first:
            # Prominence order: neither the k-th distance nor a short
            # answer says anything about which tuples are *near* the
            # query — certifying a disk here would record a falsehood.
            return None
        k = self.interface.k
        max_radius = self.interface.max_radius
        if len(answer.results) < k:
            # Short answer: every tuple within the service radius was
            # returned (only possible under a max_radius limit).
            return max_radius
        last = answer.results[-1]
        if last.distance is not None:
            return last.distance
        return None  # LNR: distances unknown, nothing certified

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Serializable snapshot: the answers in observation order.

        Everything else the history holds (locations, attrs, known
        disks, the exact-location cache) is a pure function of that
        answer sequence, so :meth:`load_state_dict` rebuilds it by
        replaying :meth:`record` — reproducing even the dict insertion
        orders a resumed run's geometry code will iterate in.

        Staged (paid-but-unrevealed) answers ride along separately —
        keyed by the *requested* point, which can differ from the
        answer's own query point when the interface's snapped cache
        served a neighbour's answer — so a run paused mid-batch keeps
        its prefetched answers even if the interface's LRU cache would
        have evicted them.
        """
        return {
            "answers": [a.to_state() for a in self._cache.values()],
            "staged": [[list(key), a.to_state()] for key, a in self._staged.items()],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` onto a fresh (empty) history."""
        for entry in state["answers"]:
            self.record(QueryAnswer.from_state(entry))
        for key, entry in state.get("staged", []):
            self._staged[(key[0], key[1])] = QueryAnswer.from_state(entry)

    # ------------------------------------------------------------------
    def cached_answers(self) -> Iterable[QueryAnswer]:
        return self._cache.values()

    def reset_sample(self) -> None:
        """Forget everything learned (used between samples when history
        is off).  Staged answers survive: they are paid-for service
        replies, not knowledge — nothing was revealed yet."""
        if not self.enabled:
            self.locations.clear()
            self.attrs.clear()
            self._cache.clear()
            region = self.interface.region
            self.disks = DiskLedger(cell_size=max(region.width, region.height) / 64.0)
