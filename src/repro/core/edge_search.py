"""Appendix-A binary search: recovering Voronoi edges from ranks alone.

LNR services return no coordinates, so cell boundaries must be *felt out*:
walk a ray from an interior anchor until the membership predicate flips,
bisect the flip down to a ``δ``-segment, then repeat along two auxiliary
rays tilted by ``±arcsin(δ'/r)`` to get a second point on the same edge
(Algorithm 7).  The line through the two transition midpoints estimates
the Voronoi edge to the precision bounds of Theorem 3; when the auxiliary
rays fail to reproduce the same opposing tuple, the fallback is the
perpendicular through the first midpoint — also covered by the theorem.

All predicates are evaluated through the caller-supplied ``pred`` (which
routes through the query cache, so re-touched points are free), keeping
the advertised ``3·log(b/δ)`` cost bound per edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..geometry import (
    Point,
    Rect,
    distance,
    midpoint,
    normalize,
    perpendicular,
    rotate,
)

__all__ = [
    "TransitionSegment",
    "LineEstimate",
    "binary_transition",
    "ray_exit",
    "estimate_boundary_line",
]

Pred = Callable[[Point], bool]
Matcher = Callable[[Point], object]


@dataclass(frozen=True)
class TransitionSegment:
    """A ``δ``-bracket of a predicate flip: ``inside`` satisfies the
    predicate, ``outside`` does not, and they are ≤ δ apart."""

    inside: Point
    outside: Point

    @property
    def mid(self) -> Point:
        return midpoint(self.inside, self.outside)

    def length(self) -> float:
        return distance(self.inside, self.outside)


@dataclass(frozen=True)
class LineEstimate:
    """An estimated boundary line.

    ``two_point`` tells whether both transition segments were found (the
    accurate case) or the perpendicular fallback fired.
    """

    point: Point
    direction: Point
    inside_hint: Point
    two_point: bool
    token: object = None  #: identity of the tuple on the far side, if known


def binary_transition(pred: Pred, inside: Point, outside: Point, delta: float) -> TransitionSegment:
    """Bisect ``[inside, outside]`` down to a ``δ``-segment.

    Assumes ``pred(inside)`` is True and ``pred(outside)`` is False (the
    caller has already paid to know both).  Costs ``log2(|io|/δ)`` probes.
    """
    lo, hi = inside, outside
    while distance(lo, hi) > delta:
        mid = midpoint(lo, hi)
        if pred(mid):
            lo = mid
        else:
            hi = mid
    return TransitionSegment(lo, hi)


def ray_exit(origin: Point, direction: Point, rect: Rect) -> Point:
    """Where the ray leaves ``rect`` (origin assumed inside)."""
    best = math.inf
    if direction.x > 1e-15:
        best = min(best, (rect.x1 - origin.x) / direction.x)
    elif direction.x < -1e-15:
        best = min(best, (rect.x0 - origin.x) / direction.x)
    if direction.y > 1e-15:
        best = min(best, (rect.y1 - origin.y) / direction.y)
    elif direction.y < -1e-15:
        best = min(best, (rect.y0 - origin.y) / direction.y)
    if not math.isfinite(best) or best < 0.0:
        raise ValueError("ray does not leave the rectangle (origin outside?)")
    return Point(origin.x + best * direction.x, origin.y + best * direction.y)


def estimate_boundary_line(
    pred: Pred,
    anchor: Point,
    far: Point,
    delta: float,
    delta_prime: float,
    rect: Rect,
    matcher: Optional[Matcher] = None,
) -> Optional[LineEstimate]:
    """Full Algorithm-7 edge estimation along ``[anchor, far]``.

    ``pred(anchor)`` must be True.  Returns ``None`` when ``pred(far)``
    is still True — no boundary before ``far`` (for rays to the bounding
    box this means the cell is bounded by the box on that side).

    ``matcher`` extracts the identity of the far-side tuple at a point;
    the auxiliary-ray segment is only accepted when its identity matches
    the primary one (the paper's "returns t on one end and t' on the
    other" condition).
    """
    if pred(far):
        return None
    seg1 = binary_transition(pred, anchor, far, delta)
    token = matcher(seg1.outside) if matcher is not None else None
    base_dir = normalize(far - anchor)
    r = max(distance(anchor, seg1.outside), delta)
    # Keep the auxiliary-ray tilt bounded: with r ≲ δ' the rays would
    # swing wide and cross a *different* edge, producing a badly wrong
    # line (Theorem 3 assumes arcsin(δ'/r) small).  Shrinking δ' to r/4
    # preserves accuracy — the angular error of the two-point line is
    # ~atan(δ/δ'_eff) and δ is ~ε²/b, far below any admissible δ'_eff.
    delta_prime_eff = min(delta_prime, r / 4.0)
    alpha = math.asin(delta_prime_eff / r) if delta_prime_eff > 0.0 else 0.0

    if alpha > 0.0:
        for sign in (1.0, -1.0):
            aux_dir = rotate(base_dir, sign * alpha)
            aux_far = _aux_far_point(anchor, aux_dir, r, delta, rect)
            if aux_far is None or pred(aux_far):
                continue
            seg2 = binary_transition(pred, anchor, aux_far, delta)
            if matcher is not None and matcher(seg2.outside) != token:
                continue
            mid1, mid2 = seg1.mid, seg2.mid
            if distance(mid1, mid2) <= max(delta * 1e-3, 1e-12):
                continue
            direction = normalize(mid2 - mid1)
            # Validation probes: near a cell corner the two transition
            # points can land on *different* edges (even with matching
            # tokens), and the chord through them cuts the corner.  A
            # genuine edge separates the predicate everywhere *between*
            # the two midpoints; a corner chord bulges into the cell there.
            if _line_validates(pred, mid1, direction, seg1.inside, delta,
                               distance(mid1, mid2), rect):
                return LineEstimate(
                    point=mid1,
                    direction=direction,
                    inside_hint=seg1.inside,
                    two_point=True,
                    token=token,
                )
    # Fallback: the edge is (estimated as) perpendicular to the walk.
    return LineEstimate(
        point=seg1.mid,
        direction=perpendicular(base_dir),
        inside_hint=seg1.inside,
        two_point=False,
        token=token,
    )


def _line_validates(
    pred: Pred,
    point: Point,
    direction: Point,
    inside_hint: Point,
    delta: float,
    separation: float,
    rect: Rect,
) -> bool:
    """Check that the candidate edge really separates the predicate.

    Probes at 35 % and 65 % of the way from the first transition midpoint
    to the second (``separation`` apart along ``direction``), offset ``γ``
    across the line: the inside-side probe must satisfy the predicate,
    the outside-side one must not.  Between the midpoints a genuine edge
    stays within ~δ of the line, while a corner chord bulges into the
    cell by a distance of the chord's sagitta — flunking the outer probe.
    γ is a few δ: above the positional noise, below any real bulge.
    """
    normal = perpendicular(direction)
    to_inside = inside_hint - point
    if normal.x * to_inside.x + normal.y * to_inside.y > 0.0:
        normal = Point(-normal.x, -normal.y)  # make +normal point outside
    gamma = 6.0 * delta
    for frac in (0.35, 0.65):
        s = frac * separation
        base = Point(point.x + s * direction.x, point.y + s * direction.y)
        inner = Point(base.x - gamma * normal.x, base.y - gamma * normal.y)
        outer = Point(base.x + gamma * normal.x, base.y + gamma * normal.y)
        if not (rect.contains(inner) and rect.contains(outer)):
            continue  # cannot judge beyond the region; skip this probe
        if not pred(inner) or pred(outer):
            return False
    return True


def _aux_far_point(anchor: Point, direction: Point, r: float, delta: float, rect: Rect) -> Optional[Point]:
    """End point for an auxiliary ray: a bit past the primary crossing
    distance, clipped to the bounding rectangle."""
    reach = r * 1.5 + 4.0 * delta
    try:
        exit_pt = ray_exit(anchor, direction, rect)
    except ValueError:
        return None
    exit_d = distance(anchor, exit_pt)
    if exit_d <= 0.0:
        return None
    reach = min(reach, exit_d)
    return Point(anchor.x + reach * direction.x, anchor.y + reach * direction.y)
