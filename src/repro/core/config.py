"""Estimator configuration knobs.

Every optimization of paper §3.2 / §4 is independently switchable so the
Fig-20 ablation can rebuild the exact ladder LR-LBS-AGG-0 … LR-LBS-AGG.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

# Re-exported here so estimator code configures the whole stack from one
# module: the query engine (index backend, answer cache, batching) is as
# much an estimator knob as h or the MC bounds.
from ..index import QueryEngineConfig

__all__ = ["LrAggConfig", "LnrAggConfig", "QueryEngineConfig"]


@dataclass(frozen=True)
class LrAggConfig:
    """Configuration of :class:`repro.core.lr_agg.LrLbsAgg`.

    Attributes
    ----------
    h:
        Which top-h Voronoi cells to use (1 = classic Voronoi; must be
        ≤ interface k).  Ignored when ``adaptive_h``.
    adaptive_h:
        §3.2.3 per-tuple choice of h driven by history upper bounds.
    lambda0:
        Measure threshold of the adaptive rule.  ``None`` = auto: twice
        the running mean of observed cell measures.
    use_fast_init:
        §3.2.1 fake-corner initialization.
    fast_init_factor:
        Fake box half-width as a multiple of the distance to the k-th
        answer of the triggering query.
    use_history:
        §3.2.2 reuse of all previously seen tuple locations.
    use_mc_bounds:
        §3.2.4 Monte-Carlo finish with upper/lower cell bounds.
    mc_tightness:
        Stop exact refinement once
        ``(upper - lower) / upper <= mc_tightness``.
    max_refine_rounds:
        Safety valve on the Theorem-1 loop.
    """

    h: int = 1
    adaptive_h: bool = False
    lambda0: Optional[float] = None
    use_fast_init: bool = True
    fast_init_factor: float = 4.0
    use_history: bool = True
    use_mc_bounds: bool = True
    mc_tightness: float = 0.15
    max_refine_rounds: int = 200

    def __post_init__(self) -> None:
        if self.h < 1:
            raise ValueError("h must be >= 1")
        if not 0.0 <= self.mc_tightness < 1.0:
            raise ValueError("mc_tightness must be in [0, 1)")
        if self.fast_init_factor <= 0.0:
            raise ValueError("fast_init_factor must be positive")

    # Ablation ladder of Fig. 20 -----------------------------------------
    @staticmethod
    def ladder(h: int = 1) -> dict[str, "LrAggConfig"]:
        """The Fig-20 variants, least to most optimized."""
        base = LrAggConfig(
            h=h, adaptive_h=False, use_fast_init=False,
            use_history=False, use_mc_bounds=False,
        )
        return {
            "LR-LBS-AGG-0": base,
            "LR-LBS-AGG-1": replace(base, use_fast_init=True),
            "LR-LBS-AGG-2": replace(base, use_fast_init=True, use_history=True),
            "LR-LBS-AGG-3": replace(
                base, use_fast_init=True, use_history=True, adaptive_h=True
            ),
            "LR-LBS-AGG": replace(
                base, use_fast_init=True, use_history=True, adaptive_h=True,
                use_mc_bounds=True,
            ),
        }


@dataclass(frozen=True)
class LnrAggConfig:
    """Configuration of :class:`repro.core.lnr_agg.LnrLbsAgg`.

    ``edge_error`` is the target maximum edge error ε of Appendix A,
    expressed relative to the longer side of the bounding region.  The
    two binary-search parameters are derived per the paper's Eq. 9:

        δ' = ε / 2,      δ = tan(arcsin(ε / b)) · ε / 2

    (``b`` = bounding-box perimeter), which keeps the *angular* error of
    the two-point edge estimate within ε — δ must be much smaller than δ'
    or the line through the two transition midpoints can tilt badly
    (Theorem 3).  Estimator bias shrinks with ε (Theorem 2) at
    O(log 1/ε) extra queries per edge (Corollary 1).
    """

    h: int = 1
    adaptive_h: bool = False
    edge_error: float = 5e-3
    #: Pull vertices toward the interior by this multiple of ε before
    #: the Theorem-1 membership test (estimated edges are only ε-accurate).
    vertex_pull: float = 1.0
    max_refine_rounds: int = 60

    def __post_init__(self) -> None:
        if self.h < 1:
            raise ValueError("h must be >= 1")
        if not 0.0 < self.edge_error < 0.5:
            raise ValueError("edge_error must be in (0, 0.5)")

    def derived_deltas(self, region_width: float, region_height: float) -> tuple[float, float]:
        """Absolute (δ, δ') for a concrete bounding region (Eq. 9)."""
        import math

        scale = max(region_width, region_height)
        eps = self.edge_error * scale
        b = 2.0 * (region_width + region_height)
        delta_prime = eps / 2.0
        delta = math.tan(math.asin(min(eps / b, 0.999))) * eps / 2.0
        return max(delta, 1e-12 * scale), delta_prime
