"""Aggregate query specification (paper §2.3, §5.1).

``SELECT AGGR(t) FROM D WHERE cond`` with AGGR ∈ {COUNT, SUM, AVG} and a
selection condition evaluable on a single tuple.  Two condition flavours:

* *pass-through* — supported by the service itself (e.g. Google Places
  ``keyword=Starbucks``): apply :meth:`KnnInterface.filtered` and estimate
  an unconditioned aggregate against the filtered view;
* *post-process* — evaluated client-side on each sampled tuple: matching
  tuples contribute ``value / p(t)``, non-matching contribute 0, which
  keeps the estimate unbiased (§5.1).

Location-dependent conditions receive the tuple location; for LNR
services the estimator first infers it (§4.3, :mod:`repro.core.localize`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from ..geometry import Point

__all__ = ["AggregateKind", "AggregateQuery", "AttrEquals"]

Condition = Callable[[Mapping, Optional[Point]], bool]


@dataclass(frozen=True)
class AttrEquals:
    """Declarative selection condition: ``subject[attr] == value``.

    The one condition shape every public surface understands: it is a
    1-arg tuple predicate (``db.filtered``/``ground_truth_count`` pass
    an :class:`~repro.lbs.LbsTuple`), a 2-arg post-process condition
    (:class:`AggregateQuery` passes ``(attrs, location)``), *and* —
    unlike a lambda — serializable, so it can travel inside an
    :class:`~repro.api.EstimationSpec`.  ``is_category``/``is_brand``
    in :mod:`repro.datasets` build these.
    """

    attr: str
    value: object

    def __call__(self, subject, location: Optional[Point] = None) -> bool:
        return subject.get(self.attr) == self.value

    def to_dict(self) -> dict:
        return {"cond": "attr_equals", "attr": self.attr, "value": self.value}

    @classmethod
    def from_dict(cls, data: dict) -> "AttrEquals":
        if data.get("cond") != "attr_equals":
            raise ValueError(f"unknown condition {data.get('cond')!r}")
        return cls(data["attr"], data["value"])


class AggregateKind(enum.Enum):
    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateQuery:
    """An aggregate to estimate.

    Parameters
    ----------
    kind:
        COUNT, SUM or AVG.
    attr:
        Attribute aggregated by SUM/AVG (ignored for COUNT).
    condition:
        Optional post-process predicate ``cond(attrs, location) -> bool``.
    needs_location:
        Set when ``condition`` reads the location — tells LNR estimators
        to run tuple-position inference before evaluating it.
    """

    kind: AggregateKind
    attr: Optional[str] = None
    condition: Optional[Condition] = None
    needs_location: bool = False

    def __post_init__(self) -> None:
        if self.kind in (AggregateKind.SUM, AggregateKind.AVG) and not self.attr:
            raise ValueError(f"{self.kind.value} requires an attribute")

    # ------------------------------------------------------------------
    @staticmethod
    def count(condition: Optional[Condition] = None, needs_location: bool = False) -> "AggregateQuery":
        return AggregateQuery(AggregateKind.COUNT, None, condition, needs_location)

    @staticmethod
    def sum(attr: str, condition: Optional[Condition] = None, needs_location: bool = False) -> "AggregateQuery":
        return AggregateQuery(AggregateKind.SUM, attr, condition, needs_location)

    @staticmethod
    def avg(attr: str, condition: Optional[Condition] = None, needs_location: bool = False) -> "AggregateQuery":
        return AggregateQuery(AggregateKind.AVG, attr, condition, needs_location)

    # ------------------------------------------------------------------
    def matches(self, attrs: Mapping, location: Optional[Point]) -> bool:
        if self.condition is None:
            return True
        return bool(self.condition(attrs, location))

    def numerator(self, attrs: Mapping, location: Optional[Point]) -> float:
        """Per-tuple numerator ``Q(t)`` of the estimator (Eq. 1/2).

        COUNT → 1, SUM/AVG → the attribute value; 0 when the selection
        condition rejects the tuple or the attribute is missing.
        """
        if not self.matches(attrs, location):
            return 0.0
        if self.kind is AggregateKind.COUNT:
            return 1.0
        value = attrs.get(self.attr)
        return float(value) if value is not None else 0.0

    def denominator(self, attrs: Mapping, location: Optional[Point]) -> float:
        """Per-tuple denominator (only meaningful for AVG = SUM/COUNT)."""
        if not self.matches(attrs, location):
            return 0.0
        if self.kind is AggregateKind.AVG and attrs.get(self.attr) is None:
            return 0.0
        return 1.0

    @property
    def is_ratio(self) -> bool:
        return self.kind is AggregateKind.AVG
