"""repro — reproduction of "Aggregate Estimations over Location Based
Services" (Liu, Rahman, Thirumuruganathan, Zhang, Das; PVLDB 8(10), 2015).

The library estimates COUNT/SUM/AVG aggregates over a hidden spatial
database reachable only through a restrictive kNN interface, for both
interface families the paper studies:

* **LR-LBS** (locations returned) — :class:`repro.core.LrLbsAgg`,
  completely unbiased via exact top-h Voronoi-cell computation;
* **LNR-LBS** (rank-only answers) — :class:`repro.core.LnrLbsAgg`, bias
  controllable to arbitrary precision via binary-searched cell edges,
  plus tuple-position inference (:class:`repro.core.TupleLocalizer`).

Quick start (the :mod:`repro.api` session facade)::

    import numpy as np
    from repro import MaxQueries, Session, generate_poi_database, US_BOX

    db = generate_poi_database(US_BOX, np.random.default_rng(7))
    result = Session(db).lr(k=5).count().run(MaxQueries(2000))
    print(result.estimate, "vs", len(db))

The driver classes remain available for low-level control::

    from repro import AggregateQuery, LrLbsAgg, LrLbsInterface, UniformSampler
    agg = LrLbsAgg(LrLbsInterface(db, k=5), UniformSampler(US_BOX),
                   AggregateQuery.count())
    print(agg.run(MaxQueries(2000)).estimate)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from .core import (
    AggregateKind,
    AggregateQuery,
    AttrEquals,
    LnrAggConfig,
    LnrCellOracle,
    LnrLbsAgg,
    LocalizationResult,
    LrAggConfig,
    LrLbsAgg,
    LrLbsNno,
    NnoConfig,
    ObservationHistory,
    TopHCellOracle,
    TupleLocalizer,
)
from .datasets import (
    AUSTIN_BOX,
    CHINA_BOX,
    US_BOX,
    CityModel,
    PoiConfig,
    PopulationGrid,
    UserConfig,
    generate_poi_database,
    generate_user_database,
    is_brand,
    is_category,
)
from .geometry import Point, Rect
from .lbs import (
    BudgetExhausted,
    InterfaceSpec,
    KnnInterface,
    LbsTuple,
    LnrLbsInterface,
    LrLbsInterface,
    ObfuscationModel,
    ProminenceRanking,
    QueryBudget,
    RankingSpec,
    SpatialDatabase,
)
from . import obs
from .obs import MetricsRegistry, RunTelemetry
from . import resilience
from .resilience import FaultSpec, ResilientInterface, RetryPolicy
from .sampling import GridWeightedSampler, UniformSampler
from .stats import Checkpoint, EstimationResult
from . import worlds
from .worlds import RegionSpec, WorldSpec
from . import api
from . import parallel
from .parallel import WorldCache, run_many_parallel
from .api import (
    AggregateSpec,
    AnyRule,
    EstimationSpec,
    MaxQueries,
    MaxSamples,
    Session,
    SessionRun,
    StoppingRule,
    TargetRelativeCI,
    run_many,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "api",
    "obs",
    "parallel",
    "resilience",
    "worlds",
    "MetricsRegistry",
    "RunTelemetry",
    "FaultSpec",
    "RetryPolicy",
    "ResilientInterface",
    "WorldCache",
    "run_many_parallel",
    "WorldSpec",
    "RegionSpec",
    "Session",
    "SessionRun",
    "EstimationSpec",
    "AggregateSpec",
    "StoppingRule",
    "MaxQueries",
    "MaxSamples",
    "TargetRelativeCI",
    "AnyRule",
    "run_many",
    "Checkpoint",
    "Point",
    "Rect",
    "AggregateKind",
    "AggregateQuery",
    "AttrEquals",
    "LrAggConfig",
    "LnrAggConfig",
    "LrLbsAgg",
    "LnrLbsAgg",
    "LrLbsNno",
    "NnoConfig",
    "TopHCellOracle",
    "LnrCellOracle",
    "TupleLocalizer",
    "LocalizationResult",
    "ObservationHistory",
    "LbsTuple",
    "SpatialDatabase",
    "KnnInterface",
    "LrLbsInterface",
    "LnrLbsInterface",
    "QueryBudget",
    "BudgetExhausted",
    "ObfuscationModel",
    "ProminenceRanking",
    "InterfaceSpec",
    "RankingSpec",
    "CityModel",
    "PopulationGrid",
    "PoiConfig",
    "UserConfig",
    "generate_poi_database",
    "generate_user_database",
    "is_category",
    "is_brand",
    "US_BOX",
    "AUSTIN_BOX",
    "CHINA_BOX",
    "UniformSampler",
    "GridWeightedSampler",
    "EstimationResult",
]
