"""Synthetic OSM-like POI databases.

Substitutes for the paper's enriched OpenStreetMap USA snapshot (§6.1):
restaurants carry Google-Maps-style ``rating`` / ``open_sundays`` /
``brand`` / ``review_count`` attributes, schools carry Census-style
``enrollment``; banks and cafés pad the mix.  Locations follow the city
mixture, so urban/rural skew matches the phenomenology the experiments
depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.aggregates import AttrEquals
from ..geometry import Rect
from ..lbs import LbsTuple, SpatialDatabase
from .cities import CityModel

__all__ = ["PoiConfig", "generate_poi_database", "is_category", "is_brand"]

_BRANDS = ("starbucks", "mozart", "bluebottle", "independent")
#: Probability a restaurant belongs to each brand (last = independent).
_BRAND_PROBS = (0.08, 0.05, 0.03, 0.84)


@dataclass(frozen=True)
class PoiConfig:
    """Category mix for a synthetic POI database."""

    n_restaurants: int = 2000
    n_schools: int = 1000
    n_banks: int = 500
    n_cafes: int = 500
    #: Mean/σ of the clipped-normal rating distribution.
    rating_mean: float = 3.8
    rating_sigma: float = 0.7
    open_sundays_rate: float = 0.6
    #: Log-normal enrollment parameters (median ≈ 500 students).
    enrollment_mu: float = 6.2
    enrollment_sigma: float = 0.7

    @property
    def total(self) -> int:
        return self.n_restaurants + self.n_schools + self.n_banks + self.n_cafes


def generate_poi_database(
    region: Rect,
    rng: np.random.Generator,
    config: Optional[PoiConfig] = None,
    city_model: Optional[CityModel] = None,
) -> SpatialDatabase:
    """Generate a POI database; deterministic given ``rng`` state."""
    if config is None:
        config = PoiConfig()
    if city_model is None:
        city_model = CityModel.generate(region, n_cities=40, rng=rng)

    tuples: list[LbsTuple] = []
    tid = 0

    for _ in range(config.n_restaurants):
        rating = float(np.clip(rng.normal(config.rating_mean, config.rating_sigma), 1.0, 5.0))
        brand = _BRANDS[int(rng.choice(len(_BRANDS), p=_BRAND_PROBS))]
        tuples.append(LbsTuple(
            tid=tid,
            location=city_model.sample_point(rng),
            attrs={
                "category": "restaurant",
                "rating": round(rating, 1),
                "open_sundays": bool(rng.random() < config.open_sundays_rate),
                "brand": brand,
                "review_count": int(rng.lognormal(3.0, 1.0)) + 1,
            },
        ))
        tid += 1

    for _ in range(config.n_schools):
        enrollment = int(rng.lognormal(config.enrollment_mu, config.enrollment_sigma)) + 20
        tuples.append(LbsTuple(
            tid=tid,
            location=city_model.sample_point(rng),
            attrs={"category": "school", "enrollment": enrollment},
        ))
        tid += 1

    for _ in range(config.n_banks):
        tuples.append(LbsTuple(
            tid=tid,
            location=city_model.sample_point(rng),
            attrs={"category": "bank"},
        ))
        tid += 1

    for _ in range(config.n_cafes):
        tuples.append(LbsTuple(
            tid=tid,
            location=city_model.sample_point(rng),
            attrs={"category": "cafe"},
        ))
        tid += 1

    return SpatialDatabase(tuples, region)


def is_category(category: str) -> AttrEquals:
    """Predicate factory: tuple belongs to ``category``.

    Returns a serializable :class:`~repro.core.aggregates.AttrEquals`,
    usable as a pass-through filter, a post-process condition, or
    inside an :class:`~repro.api.EstimationSpec`.
    """
    return AttrEquals("category", category)


def is_brand(brand: str) -> AttrEquals:
    """Predicate factory: tuple carries the given ``brand``."""
    return AttrEquals("brand", brand)
