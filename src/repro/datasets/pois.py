"""Synthetic OSM-like POI databases.

Substitutes for the paper's enriched OpenStreetMap USA snapshot (§6.1):
restaurants carry Google-Maps-style ``rating`` / ``open_sundays`` /
``brand`` / ``review_count`` attributes, schools carry Census-style
``enrollment``; banks and cafés pad the mix.  Locations follow the city
mixture, so urban/rural skew matches the phenomenology the experiments
depend on.

This module is a thin wrapper over :mod:`repro.worlds`: the city model
is converted to its vectorized :class:`~repro.worlds.GaussianClusters`
equivalent and every category block synthesizes through the shared
declarative attribute machinery.  For fully declarative worlds (and the
registry gallery) use :mod:`repro.worlds` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.aggregates import AttrEquals
from ..geometry import Rect
from ..lbs import SpatialDatabase
from ..lbs.columns import concat_columns
from ..worlds.attrs import (
    AttrSchema,
    Bernoulli,
    Categorical,
    Constant,
    Numeric,
    synthesize_columns,
)
from ..worlds.region import RegionSpec, resolve_region
from ..worlds.registry import BRAND_PROBS, BRANDS
from .cities import CityModel

__all__ = ["PoiConfig", "generate_poi_database", "is_category", "is_brand"]

_BRANDS = BRANDS
#: Probability a restaurant belongs to each brand (last = independent).
_BRAND_PROBS = BRAND_PROBS


@dataclass(frozen=True)
class PoiConfig:
    """Category mix for a synthetic POI database."""

    n_restaurants: int = 2000
    n_schools: int = 1000
    n_banks: int = 500
    n_cafes: int = 500
    #: Mean/σ of the clipped-normal rating distribution.
    rating_mean: float = 3.8
    rating_sigma: float = 0.7
    open_sundays_rate: float = 0.6
    #: Log-normal enrollment parameters (median ≈ 500 students).
    enrollment_mu: float = 6.2
    enrollment_sigma: float = 0.7

    @property
    def total(self) -> int:
        return self.n_restaurants + self.n_schools + self.n_banks + self.n_cafes


def _category_blocks(config: PoiConfig) -> list[tuple[int, AttrSchema]]:
    """One ``(count, schema)`` block per POI category."""
    return [
        (config.n_restaurants, AttrSchema(fields=(
            Constant("category", "restaurant"),
            Numeric("rating", "normal", config.rating_mean, config.rating_sigma,
                    low=1.0, high=5.0, decimals=1),
            Bernoulli("open_sundays", config.open_sundays_rate),
            Categorical("brand", _BRANDS, _BRAND_PROBS),
            Numeric("review_count", "lognormal", 3.0, 1.0, offset=1.0, integer=True),
        ))),
        (config.n_schools, AttrSchema(fields=(
            Constant("category", "school"),
            Numeric("enrollment", "lognormal", config.enrollment_mu,
                    config.enrollment_sigma, offset=20.0, integer=True),
        ))),
        (config.n_banks, AttrSchema(fields=(Constant("category", "bank"),))),
        (config.n_cafes, AttrSchema(fields=(Constant("category", "cafe"),))),
    ]


def generate_poi_database(
    region: Union[Rect, RegionSpec, None] = None,
    rng: Optional[np.random.Generator] = None,
    config: Optional[PoiConfig] = None,
    city_model: Optional[CityModel] = None,
) -> SpatialDatabase:
    """Generate a POI database; deterministic given ``rng`` state.

    ``region`` defaults to the library's standard experiment box
    (:func:`repro.worlds.default_region`); a
    :class:`~repro.worlds.RegionSpec` is accepted as well.
    """
    region = resolve_region(region)
    if rng is None:
        rng = np.random.default_rng(0)
    if config is None:
        config = PoiConfig()
    if city_model is None:
        city_model = CityModel.generate(region, n_cities=40, rng=rng)
    spatial = city_model.to_spatial_model(region)

    # Each category block synthesizes columnar; the blocks stack into
    # one column set (absence masks where a category lacks a column)
    # and ingest without building a single row object.
    blocks = []
    tid_start = 0
    for count, schema in _category_blocks(config):
        if count == 0:
            continue
        xy, labels = spatial.sample(rng, count, region)
        xyv, tids, columns = synthesize_columns(
            rng, xy, labels, schema, tid_start=tid_start
        )
        tid_start += len(tids)
        blocks.append((xyv, tids, columns))
    if not blocks:
        return SpatialDatabase([], region)
    return SpatialDatabase.from_columns(
        np.concatenate([b[0] for b in blocks]),
        np.concatenate([b[1] for b in blocks]),
        concat_columns([(len(b[1]), b[2]) for b in blocks]),
        region,
    )


def is_category(category: str) -> AttrEquals:
    """Predicate factory: tuple belongs to ``category``.

    Returns a serializable :class:`~repro.core.aggregates.AttrEquals`,
    usable as a pass-through filter, a post-process condition, or
    inside an :class:`~repro.api.EstimationSpec`.
    """
    return AttrEquals("category", category)


def is_brand(brand: str) -> AttrEquals:
    """Predicate factory: tuple carries the given ``brand``."""
    return AttrEquals("brand", brand)
