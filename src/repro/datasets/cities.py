"""City mixture model: the spatial skeleton of every synthetic dataset.

Real POI and user densities are extremely skewed (the paper's Fig. 11:
Starbucks Voronoi cells range from < 1 km² downtown to 10^5 km² in rural
Nevada).  We reproduce that skew with a Gaussian-mixture "metro areas"
model: city weights follow a Zipf law, city radii grow sub-linearly with
weight, and a uniform rural background floor keeps the whole region
populated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..geometry import Point, Rect

__all__ = ["City", "CityModel"]


@dataclass(frozen=True)
class City:
    center: Point
    weight: float
    sigma: float


class CityModel:
    """A weighted Gaussian mixture plus a uniform rural floor.

    ``rural_fraction`` of the mass is spread uniformly over the region;
    the rest is split among cities proportionally to their Zipf weights.
    """

    def __init__(self, region: Rect, cities: Sequence[City], rural_fraction: float = 0.15):
        if not 0.0 <= rural_fraction <= 1.0:
            raise ValueError("rural_fraction must be in [0, 1]")
        if not cities and rural_fraction < 1.0:
            raise ValueError("need at least one city unless fully rural")
        self.region = region
        self.cities = list(cities)
        self.rural_fraction = rural_fraction
        total = sum(c.weight for c in self.cities)
        self._probs = np.array([c.weight / total for c in self.cities]) if total else np.array([])

    @staticmethod
    def generate(
        region: Rect,
        n_cities: int,
        rng: np.random.Generator,
        zipf_exponent: float = 1.0,
        base_sigma_fraction: float = 0.012,
        rural_fraction: float = 0.15,
    ) -> "CityModel":
        """Random model: centres uniform, weights ~ rank^-zipf, radii ~ weight^0.4.

        The same layout law as ``repro.worlds.ZipfHotspots.materialize``
        (kept as separate implementations: the RNG streams differ, and
        unifying them would re-roll every seed-pinned realization) — a
        change to the law here must be mirrored there."""
        if n_cities < 1:
            raise ValueError("n_cities must be >= 1")
        span = min(region.width, region.height)
        cities = []
        for rank in range(1, n_cities + 1):
            weight = rank ** (-zipf_exponent)
            sigma = base_sigma_fraction * span * (weight ** 0.4) * float(rng.uniform(0.7, 1.3))
            center = region.sample(rng)
            cities.append(City(center=center, weight=weight, sigma=max(sigma, 1e-6)))
        return CityModel(region, cities, rural_fraction)

    # ------------------------------------------------------------------
    def sample_point(self, rng: np.random.Generator) -> Point:
        """One point from the mixture, truncated to the region."""
        for _attempt in range(1000):
            if not self.cities or rng.random() < self.rural_fraction:
                return self.region.sample(rng)
            idx = int(rng.choice(len(self.cities), p=self._probs))
            city = self.cities[idx]
            x = rng.normal(city.center.x, city.sigma)
            y = rng.normal(city.center.y, city.sigma)
            p = Point(float(x), float(y))
            if self.region.contains(p):
                return p
        # Pathological model (city far outside region): fall back to uniform.
        return self.region.sample(rng)

    def sample_points(self, n: int, rng: np.random.Generator) -> list[Point]:
        return [self.sample_point(rng) for _ in range(n)]

    # ------------------------------------------------------------------
    def to_spatial_model(self, region: Rect):
        """The :mod:`repro.worlds` model equivalent to this city mixture.

        Centres/radii are re-expressed fractionally relative to
        ``region``, so the vectorized
        :class:`~repro.worlds.GaussianClusters` sampler reproduces this
        model's population shape (the dataset generators sample through
        it).  Fully rural models degrade to a uniform field.
        """
        from ..worlds.spatial import GaussianClusters, UniformField

        if not self.cities or self.rural_fraction >= 1.0:
            return UniformField()
        span = min(region.width, region.height)
        return GaussianClusters(
            centers=tuple(
                (
                    (c.center.x - region.x0) / region.width,
                    (c.center.y - region.y0) / region.height,
                )
                for c in self.cities
            ),
            sigmas=tuple(c.sigma / span for c in self.cities),
            weights=tuple(c.weight for c in self.cities),
            background=self.rural_fraction,
        )

    # ------------------------------------------------------------------
    def density(self, p: Point) -> float:
        """Un-normalized mixture density (truncation ignored: adequate for
        building the census raster, which is itself only a heuristic)."""
        value = self.rural_fraction / self.region.area
        urban = 1.0 - self.rural_fraction
        for city, prob in zip(self.cities, self._probs):
            dx = p.x - city.center.x
            dy = p.y - city.center.y
            s2 = city.sigma * city.sigma
            value += urban * float(prob) * math.exp(-(dx * dx + dy * dy) / (2.0 * s2)) / (
                2.0 * math.pi * s2
            )
        return value
