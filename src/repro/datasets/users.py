"""Synthetic social-network user databases (WeChat / Sina Weibo style).

Only users with the location feature enabled are visible to the nearby-
people kNN API — the paper's Table-1 caveat that its COUNT measures
location-enabled users, not registered accounts.  We generate the full
population and expose the visible subset.

A thin wrapper over :mod:`repro.worlds`: the profile columns and the
visibility rate live in a declarative
:class:`~repro.worlds.AttrSchema` (the same one the registry's
``wechat-like-1m`` / ``weibo-like-100k`` scenarios use), and locations
sample through the city model's vectorized worlds equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..geometry import Rect
from ..lbs import SpatialDatabase
from ..worlds.attrs import AttrSchema, synthesize_columns
from ..worlds.region import RegionSpec, resolve_region
from ..worlds.registry import user_fields
from .cities import CityModel

__all__ = ["UserConfig", "generate_user_database", "WECHAT_LIKE", "WEIBO_LIKE"]


@dataclass(frozen=True)
class UserConfig:
    """Population parameters for a social LBS."""

    n_users: int = 5000
    male_fraction: float = 0.5
    location_enabled_rate: float = 1.0

    def schema(self) -> AttrSchema:
        """The declarative form of this population's profile columns."""
        return AttrSchema(
            fields=user_fields(self.male_fraction),
            visible_rate=self.location_enabled_rate,
        )


#: Gender skews matching the paper's Table-1 estimates.
WECHAT_LIKE = UserConfig(n_users=5000, male_fraction=0.671)
WEIBO_LIKE = UserConfig(n_users=5000, male_fraction=0.504)


def generate_user_database(
    region: Union[Rect, RegionSpec, None] = None,
    rng: Optional[np.random.Generator] = None,
    config: Optional[UserConfig] = None,
    city_model: Optional[CityModel] = None,
) -> SpatialDatabase:
    """Generate the *visible* user database (location-enabled users only).

    ``region`` defaults to the library's standard experiment box
    (:func:`repro.worlds.default_region`).
    """
    region = resolve_region(region)
    if rng is None:
        rng = np.random.default_rng(0)
    if config is None:
        config = UserConfig()
    if city_model is None:
        city_model = CityModel.generate(region, n_cities=60, rng=rng)
    xy, labels = city_model.to_spatial_model(region).sample(rng, config.n_users, region)
    xyv, tids, columns = synthesize_columns(rng, xy, labels, config.schema())
    return SpatialDatabase.from_columns(xyv, tids, columns, region)
