"""Synthetic social-network user databases (WeChat / Sina Weibo style).

Only users with the location feature enabled are visible to the nearby-
people kNN API — the paper's Table-1 caveat that its COUNT measures
location-enabled users, not registered accounts.  We generate the full
population and expose the visible subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import Rect
from ..lbs import LbsTuple, SpatialDatabase
from .cities import CityModel

__all__ = ["UserConfig", "generate_user_database", "WECHAT_LIKE", "WEIBO_LIKE"]


@dataclass(frozen=True)
class UserConfig:
    """Population parameters for a social LBS."""

    n_users: int = 5000
    male_fraction: float = 0.5
    location_enabled_rate: float = 1.0


#: Gender skews matching the paper's Table-1 estimates.
WECHAT_LIKE = UserConfig(n_users=5000, male_fraction=0.671)
WEIBO_LIKE = UserConfig(n_users=5000, male_fraction=0.504)


def generate_user_database(
    region: Rect,
    rng: np.random.Generator,
    config: Optional[UserConfig] = None,
    city_model: Optional[CityModel] = None,
) -> SpatialDatabase:
    """Generate the *visible* user database (location-enabled users only)."""
    if config is None:
        config = UserConfig()
    if city_model is None:
        city_model = CityModel.generate(region, n_cities=60, rng=rng)

    tuples: list[LbsTuple] = []
    tid = 0
    for _ in range(config.n_users):
        if rng.random() >= config.location_enabled_rate:
            continue  # invisible to the nearby-people API
        gender = "m" if rng.random() < config.male_fraction else "f"
        tuples.append(LbsTuple(
            tid=tid,
            location=city_model.sample_point(rng),
            attrs={
                "gender": gender,
                # Numeric mirror so gender ratio = AVG(is_male).
                "is_male": 1 if gender == "m" else 0,
                "name": f"user{tid}",
            },
        ))
        tid += 1
    return SpatialDatabase(tuples, region)
