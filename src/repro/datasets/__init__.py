"""Synthetic geo datasets standing in for OSM / Google Maps / US Census."""

from .census import PopulationGrid
from .cities import City, CityModel
from .pois import PoiConfig, generate_poi_database, is_brand, is_category
from .regions import AUSTIN_BOX, CHINA_BOX, SMALL_BOX, UNIT_BOX, US_BOX, subrect
from .users import WECHAT_LIKE, WEIBO_LIKE, UserConfig, generate_user_database

__all__ = [
    "SMALL_BOX",
    "City",
    "CityModel",
    "PopulationGrid",
    "PoiConfig",
    "generate_poi_database",
    "is_category",
    "is_brand",
    "UserConfig",
    "generate_user_database",
    "WECHAT_LIKE",
    "WEIBO_LIKE",
    "US_BOX",
    "AUSTIN_BOX",
    "CHINA_BOX",
    "UNIT_BOX",
    "subrect",
]
