"""Census-like population raster (the paper's external knowledge, §5.2).

The real system consults US-Census population density to bias the query
distribution.  We build the analogous artifact from the city model — a
rectangular grid of non-negative weights — optionally corrupted with
multiplicative noise to emulate *inaccurate* external knowledge (the
estimators must stay unbiased regardless; only variance changes).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..geometry import Point, Rect
from ..worlds.region import RegionSpec, resolve_region
from .cities import CityModel

__all__ = ["PopulationGrid"]


class PopulationGrid:
    """A piecewise-constant density over ``region`` on an ``nx`` x ``ny`` grid.

    ``weights[i, j]`` is proportional to the probability mass of cell
    ``(i, j)`` (column i along x, row j along y).  The induced *density*
    is ``f(q) = weights[cell(q)] / (total_weight * cell_area)``, which
    integrates to 1 over the region.
    """

    def __init__(self, region: Rect, weights: np.ndarray):
        if weights.ndim != 2:
            raise ValueError("weights must be 2-D (nx, ny)")
        if np.any(weights < 0.0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0.0:
            raise ValueError("weights must have positive total mass")
        self.region = region
        self.weights = weights.astype(float)
        self.nx, self.ny = weights.shape
        self.cell_w = region.width / self.nx
        self.cell_h = region.height / self.ny
        self.total = total
        self._flat_probs = (self.weights / total).ravel()

    # ------------------------------------------------------------------
    @staticmethod
    def from_city_model(
        model: CityModel,
        nx: int = 64,
        ny: int = 40,
        noise: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "PopulationGrid":
        """Rasterize the city-model density at cell centres.

        ``noise`` > 0 multiplies every cell by ``LogNormal(0, noise)`` —
        the knob for "external knowledge is off by a lot".
        """
        region = model.region
        weights = np.empty((nx, ny))
        for i in range(nx):
            for j in range(ny):
                cx = region.x0 + (i + 0.5) * region.width / nx
                cy = region.y0 + (j + 0.5) * region.height / ny
                weights[i, j] = model.density(Point(cx, cy))
        if noise > 0.0:
            if rng is None:
                rng = np.random.default_rng(0)
            weights *= rng.lognormal(0.0, noise, size=weights.shape)
        return PopulationGrid(region, weights)

    @staticmethod
    def uniform(
        region: Union[Rect, RegionSpec, None] = None, nx: int = 1, ny: int = 1
    ) -> "PopulationGrid":
        """A flat raster; ``region`` defaults to the library's standard
        experiment box (:func:`repro.worlds.default_region`)."""
        return PopulationGrid(resolve_region(region), np.ones((nx, ny)))

    @staticmethod
    def from_spatial_model(
        model,
        region: Union[Rect, RegionSpec],
        nx: int = 64,
        ny: int = 40,
        noise: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "PopulationGrid":
        """Rasterize a :class:`~repro.worlds.SpatialModel` density (the
        vectorized sibling of :meth:`from_city_model`)."""
        region = resolve_region(region)
        weights = model.density_grid(region, nx, ny)
        if noise > 0.0:
            if rng is None:
                rng = np.random.default_rng(0)
            weights = weights * rng.lognormal(0.0, noise, size=weights.shape)
        return PopulationGrid(region, weights)

    # ------------------------------------------------------------------
    def cell_of(self, p: Point) -> tuple[int, int]:
        """Grid cell containing ``p`` (clamped to the region)."""
        i = int((p.x - self.region.x0) / self.cell_w)
        j = int((p.y - self.region.y0) / self.cell_h)
        return min(max(i, 0), self.nx - 1), min(max(j, 0), self.ny - 1)

    def cell_rect(self, i: int, j: int) -> Rect:
        x0 = self.region.x0 + i * self.cell_w
        y0 = self.region.y0 + j * self.cell_h
        return Rect(x0, y0, x0 + self.cell_w, y0 + self.cell_h)

    def cell_area(self) -> float:
        return self.cell_w * self.cell_h

    def density(self, p: Point) -> float:
        """Probability density at ``p`` (integrates to 1 over the region)."""
        i, j = self.cell_of(p)
        return self.weights[i, j] / (self.total * self.cell_area())

    def sample_point(self, rng: np.random.Generator) -> Point:
        """Draw a point from the grid density."""
        flat = int(rng.choice(self.nx * self.ny, p=self._flat_probs))
        i, j = divmod(flat, self.ny)
        cell = self.cell_rect(i, j)
        return cell.sample(rng)

    def sample_points(self, rng: np.random.Generator, n: int) -> list[Point]:
        """Draw ``n`` points, consuming the generator stream exactly like
        ``n`` single :meth:`sample_point` draws.

        The batched estimators' bit-identity guarantee (a sample-bound
        batched run reproduces the sequential run) rests on the batch
        draw replaying the single-draw stream; a vectorized layout
        (one ``choice(size=n)`` + one ``random((n, 2))``) consumes the
        stream differently and would silently change every sample.
        Sampling is nowhere near the hot path — each sample point costs
        multiple kNN queries and cell computations downstream."""
        return [self.sample_point(rng) for _ in range(n)]
