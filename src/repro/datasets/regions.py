"""Named experiment regions.

The paper works in longitude/latitude; we work on a planar box in
kilometres (the algorithms only need a metric plane — see DESIGN.md §3).
``US_BOX`` approximates the continental US extent (~4500 x 2800 km),
``AUSTIN_BOX`` a metropolitan sub-rectangle used by the Fig-17 AVG query,
and ``CHINA_BOX`` the WeChat/Weibo experiments' region.
"""

from __future__ import annotations

from ..geometry import Rect

__all__ = ["US_BOX", "AUSTIN_BOX", "CHINA_BOX", "UNIT_BOX", "subrect"]

US_BOX = Rect(0.0, 0.0, 4500.0, 2800.0)

#: A metro-sized window placed in the south-central part of ``US_BOX``
#: (stands in for Austin, TX in the AVG(rating) experiment).
AUSTIN_BOX = Rect(2200.0, 600.0, 2360.0, 760.0)

CHINA_BOX = Rect(0.0, 0.0, 5000.0, 3500.0)

#: Small box for unit tests.
UNIT_BOX = Rect(0.0, 0.0, 100.0, 100.0)


def subrect(region: Rect, fx0: float, fy0: float, fx1: float, fy1: float) -> Rect:
    """Fractional sub-rectangle of ``region`` (each f in [0, 1])."""
    return Rect(
        region.x0 + fx0 * region.width,
        region.y0 + fy0 * region.height,
        region.x0 + fx1 * region.width,
        region.y0 + fy1 * region.height,
    )
