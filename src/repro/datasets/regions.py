"""Named experiment regions.

The paper works in longitude/latitude; we work on a planar box in
kilometres (the algorithms only need a metric plane — see DESIGN.md §3).
The canonical boxes are defined once, in
:mod:`repro.worlds.region` (:data:`~repro.worlds.region.NAMED_REGIONS`);
this module derives the legacy ``*_BOX`` constants from there.
``US_BOX`` approximates the continental US extent (~4500 x 2800 km),
``AUSTIN_BOX`` a metropolitan sub-rectangle used by the Fig-17 AVG query,
and ``CHINA_BOX`` the WeChat/Weibo experiments' region.
"""

from __future__ import annotations

from ..geometry import Rect
from ..worlds.region import RegionSpec

__all__ = ["US_BOX", "AUSTIN_BOX", "CHINA_BOX", "UNIT_BOX", "SMALL_BOX", "subrect"]

US_BOX = RegionSpec.named("us").rect

#: A metro-sized window placed in the south-central part of ``US_BOX``
#: (stands in for Austin, TX in the AVG(rating) experiment).
AUSTIN_BOX = RegionSpec.named("austin").rect

CHINA_BOX = RegionSpec.named("china").rect

#: Small box for unit tests.
UNIT_BOX = RegionSpec.named("unit").rect

#: The standard offline-experiment region (and the dataset generators'
#: default when no region is passed).
SMALL_BOX = RegionSpec.named("small").rect


def subrect(region: Rect, fx0: float, fy0: float, fx1: float, fy1: float) -> Rect:
    """Fractional sub-rectangle of ``region`` (each f in [0, 1])."""
    return Rect(
        region.x0 + fx0 * region.width,
        region.y0 + fy0 * region.height,
        region.x0 + fx1 * region.width,
        region.y0 + fy1 * region.height,
    )
