"""Figure 12 — unbiasedness/convergence traces for COUNT(restaurants).

The paper plots the running estimate of LR-LBS-NNO, LR-LBS-AGG and
LNR-LBS-AGG against query cost: the AGG estimators settle on the ground
truth quickly; NNO oscillates with high variance and converges late.
"""

from __future__ import annotations

from typing import Optional

from ..core import AggregateQuery, LnrAggConfig, LnrLbsAgg, LrAggConfig, LrLbsAgg, LrLbsNno, MaxQueries
from ..datasets import is_category
from ..lbs import LnrLbsInterface, LrLbsInterface
from ..sampling import UniformSampler
from .harness import ExperimentTable, World, poi_world

__all__ = ["run", "traces"]

_CHECKPOINTS = (250, 500, 1000, 1500, 2000, 3000)


def traces(world: Optional[World] = None, max_queries: int = 3000, seed: int = 1,
           lnr_max_queries: Optional[int] = None, batch_size: int = 1):
    """Raw traces for the three algorithms (list of TracePoint each)."""
    if world is None:
        world = poi_world()
    query = AggregateQuery.count(lambda attrs, _loc: attrs.get("category") == "restaurant")
    sampler = UniformSampler(world.region)
    truth = world.db.ground_truth_count(is_category("restaurant"))

    lr = LrLbsAgg(LrLbsInterface(world.db, k=5), sampler, query, LrAggConfig(adaptive_h=True), seed=seed)
    nno = LrLbsNno(LrLbsInterface(world.db, k=5), sampler, query, seed=seed)
    lnr = LnrLbsAgg(LnrLbsInterface(world.db, k=5), sampler, query, LnrAggConfig(h=1), seed=seed)

    lr_res = lr.run(MaxQueries(max_queries), batch_size=batch_size)
    nno_res = nno.run(MaxQueries(max_queries), batch_size=batch_size)
    lnr_res = lnr.run(MaxQueries(lnr_max_queries or max_queries), batch_size=batch_size)
    return truth, {"LR-LBS-AGG": lr_res, "LR-LBS-NNO": nno_res, "LNR-LBS-AGG": lnr_res}


def run(world: Optional[World] = None, max_queries: int = 3000, seed: int = 1,
        batch_size: int = 1) -> ExperimentTable:
    truth, results = traces(world, max_queries, seed, batch_size=batch_size)
    table = ExperimentTable(
        title="Figure 12 — running COUNT(restaurants) estimate vs query cost",
        headers=["queries", "LR-LBS-NNO", "LR-LBS-AGG", "LNR-LBS-AGG", "truth"],
        notes="AGG traces hug the truth early; NNO converges late with high variance.",
    )
    for q in _CHECKPOINTS:
        if q > max_queries:
            break
        row = [q]
        for name in ("LR-LBS-NNO", "LR-LBS-AGG", "LNR-LBS-AGG"):
            row.append(_estimate_at(results[name].trace, q))
        row.append(truth)
        table.add(*row)
    return table


def _estimate_at(trace, queries: int):
    """Last estimate recorded at or before the given query cost."""
    best = None
    for pt in trace:
        if pt.queries <= queries:
            best = pt.estimate
        else:
            break
    return best
