"""Figure 13 — uniform vs census-weighted query sampling, COUNT(schools).

The paper's §5.2 optimization: drawing query points proportionally to a
population raster flattens the 1/p(t) spread and cuts the query cost at
every error level, for both LR- and LNR-LBS-AGG ("-US" variants in the
paper's legend).  Unbiasedness survives even a noisy raster.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import AggregateQuery, LnrAggConfig, LnrLbsAgg, LrAggConfig, LrLbsAgg
from ..datasets import is_category
from ..lbs import LnrLbsInterface, LrLbsInterface
from ..sampling import GridWeightedSampler, UniformSampler
from .harness import DEFAULT_TARGETS, ExperimentTable, World, cost_to_reach, poi_world

__all__ = ["run"]


def run(
    world: Optional[World] = None,
    n_runs: int = 3,
    max_queries: int = 4000,
    targets: Sequence[float] = DEFAULT_TARGETS,
    include_lnr: bool = True,
    seed: int = 0,
    batch_size: int = 1,
) -> ExperimentTable:
    if world is None:
        world = poi_world()
    query = AggregateQuery.count(lambda attrs, _loc: attrs.get("category") == "school")
    truth = world.db.ground_truth_count(is_category("school"))
    uniform = UniformSampler(world.region)
    weighted = GridWeightedSampler(world.census)

    def lr(sampler):
        def make(s: int):
            return LrLbsAgg(
                LrLbsInterface(world.db, k=5), sampler, query,
                LrAggConfig(adaptive_h=True), seed=s,
            )
        return make

    def lnr(sampler):
        def make(s: int):
            return LnrLbsAgg(
                LnrLbsInterface(world.db, k=5), sampler, query,
                LnrAggConfig(h=1), seed=s,
            )
        return make

    columns = {
        "LR-LBS-AGG": cost_to_reach(lr(uniform), truth, targets, n_runs,
                                    max_queries, seed, batch_size=batch_size),
        "LR-LBS-AGG-US": cost_to_reach(lr(weighted), truth, targets, n_runs,
                                       max_queries, seed, batch_size=batch_size),
    }
    if include_lnr:
        columns["LNR-LBS-AGG"] = cost_to_reach(
            lnr(uniform), truth, targets, n_runs, 4 * max_queries, seed,
            batch_size=batch_size,
        )
        columns["LNR-LBS-AGG-US"] = cost_to_reach(
            lnr(weighted), truth, targets, n_runs, 4 * max_queries, seed,
            batch_size=batch_size,
        )

    table = ExperimentTable(
        title="Figure 13 — impact of the sampling strategy (US = census-weighted)",
        headers=["rel. error"] + list(columns),
        notes="Weighted variants reach every error level with fewer queries.",
    )
    for t in targets:
        table.add(t, *[columns[name][t] for name in columns])
    return table
