"""Table 1 — the "online" demonstrations, simulated.

The paper runs four live studies; each maps to a synthetic service here
(DESIGN.md §3 records the substitutions):

* Google Places, COUNT(Starbucks in US) — pass-through condition on an
  LR interface (paper: 12023 est. vs Starbucks' published count, < 5 %).
* Google Places, COUNT(restaurants open on Sundays, Austin) — a
  post-process condition the API cannot filter on.
* WeChat, COUNT(users) and gender ratio — LNR interface, obfuscated.
* Sina Weibo, ditto with k = 100-style wide answers and an 11 km
  max-radius service limit.
"""

from __future__ import annotations

from typing import Optional

from ..core import (
    AggregateQuery,
    LnrAggConfig,
    LnrLbsAgg,
    LrAggConfig,
    LrLbsAgg,
    MaxQueries,
)
from ..datasets import (
    UserConfig,
    is_brand,
    is_category,
    subrect,
)
from ..lbs import InterfaceSpec, LrLbsInterface, ObfuscationModel
from ..sampling import UniformSampler
from .harness import ExperimentTable, World, poi_world, user_world

__all__ = ["run", "GroundTruths"]


class GroundTruths(dict):
    """Ground truths keyed like the table rows (for shape checks)."""


def run(
    poi: Optional[World] = None,
    wechat: Optional[World] = None,
    weibo: Optional[World] = None,
    budget_places: int = 2500,
    budget_social: int = 6000,
    seed: int = 0,
    batch_size: int = 1,
) -> tuple[ExperimentTable, GroundTruths]:
    if poi is None:
        poi = poi_world(seed=7)
    if wechat is None:
        wechat = user_world(seed=11, config=UserConfig(n_users=300, male_fraction=0.671))
    if weibo is None:
        weibo = user_world(seed=13, config=UserConfig(n_users=300, male_fraction=0.504))

    table = ExperimentTable(
        title="Table 1 — online experiments (simulated services)",
        headers=["LBS", "aggregate", "estimate", "truth", "query budget"],
    )
    truths = GroundTruths()

    # -- Google Places: COUNT(Starbucks), pass-through condition --------
    sampler = UniformSampler(poi.region)
    api = LrLbsInterface(poi.db, k=10)
    filtered = api.filtered(is_brand("starbucks"))
    agg = LrLbsAgg(filtered, sampler, AggregateQuery.count(),
                   LrAggConfig(adaptive_h=True), seed=seed)
    res = agg.run(MaxQueries(budget_places), batch_size=batch_size)
    truth = poi.db.ground_truth_count(is_brand("starbucks"))
    table.add("Google Places (sim)", "COUNT(Starbucks)", round(res.estimate, 1), truth, budget_places)
    truths["starbucks"] = (res.estimate, truth)

    # -- Google Places: COUNT(restaurants open Sundays, metro box) ------
    box = subrect(poi.region, 0.25, 0.25, 0.75, 0.75)

    def open_sunday(attrs, loc):
        return (
            attrs.get("category") == "restaurant"
            and bool(attrs.get("open_sundays"))
            and loc is not None and box.contains(loc)
        )

    api2 = LrLbsInterface(poi.db, k=10)
    agg2 = LrLbsAgg(api2, UniformSampler(box),
                    AggregateQuery.count(open_sunday, needs_location=True),
                    LrAggConfig(adaptive_h=True), seed=seed)
    res2 = agg2.run(MaxQueries(budget_places), batch_size=batch_size)
    truth2 = poi.db.ground_truth_count(
        lambda t: is_category("restaurant")(t)
        and bool(t.get("open_sundays")) and box.contains(t.location)
    )
    table.add("Google Places (sim)", "COUNT(rest. open Sun, metro)",
              round(res2.estimate, 1), truth2, budget_places)
    truths["open_sunday"] = (res2.estimate, truth2)

    # -- WeChat: COUNT(users) and gender ratio (obfuscated LNR) ---------
    # The service itself is declarative: a rank-only top-10 interface
    # with per-user position jitter (InterfaceSpec → build).
    wechat_spec = InterfaceSpec(
        kind="lnr", k=10, obfuscation=ObfuscationModel(sigma=1.0, seed=seed)
    )
    wechat_api = wechat_spec.build(wechat.db)
    wechat_sampler = UniformSampler(wechat.region)
    count_agg = LnrLbsAgg(wechat_api, wechat_sampler, AggregateQuery.count(),
                          LnrAggConfig(h=1), seed=seed)
    res3 = count_agg.run(MaxQueries(budget_social), batch_size=batch_size)
    truth3 = len(wechat.db)
    table.add("WeChat (sim)", "COUNT(users)", round(res3.estimate, 1), truth3, budget_social)
    truths["wechat_count"] = (res3.estimate, truth3)

    ratio_agg = LnrLbsAgg(wechat_spec.build(wechat.db),
                          wechat_sampler, AggregateQuery.avg("is_male"),
                          LnrAggConfig(h=1), seed=seed)
    res4 = ratio_agg.run(MaxQueries(budget_social), batch_size=batch_size)
    truth4 = wechat.db.ground_truth_avg("is_male")
    table.add("WeChat (sim)", "male fraction", round(res4.estimate, 3),
              round(truth4, 3), budget_social)
    truths["wechat_ratio"] = (res4.estimate, truth4)

    # -- Sina Weibo: same aggregates, max-radius limited -----------------
    weibo_radius = 0.25 * max(weibo.region.width, weibo.region.height)
    weibo_spec = InterfaceSpec(kind="lnr", k=20, max_radius=weibo_radius)
    weibo_api = weibo_spec.build(weibo.db)
    weibo_sampler = UniformSampler(weibo.region)
    count5 = LnrLbsAgg(weibo_api, weibo_sampler, AggregateQuery.count(),
                       LnrAggConfig(h=1), seed=seed)
    res5 = count5.run(MaxQueries(budget_social), batch_size=batch_size)
    truth5 = len(weibo.db)
    table.add("Sina Weibo (sim)", "COUNT(users)", round(res5.estimate, 1), truth5, budget_social)
    truths["weibo_count"] = (res5.estimate, truth5)

    ratio6 = LnrLbsAgg(weibo_spec.build(weibo.db),
                       weibo_sampler, AggregateQuery.avg("is_male"),
                       LnrAggConfig(h=1), seed=seed)
    res6 = ratio6.run(MaxQueries(budget_social), batch_size=batch_size)
    truth6 = weibo.db.ground_truth_avg("is_male")
    table.add("Sina Weibo (sim)", "male fraction", round(res6.estimate, 3),
              round(truth6, 3), budget_social)
    truths["weibo_ratio"] = (res6.estimate, truth6)

    return table, truths
