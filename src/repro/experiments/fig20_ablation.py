"""Figure 20 — the error-reduction ladder LR-LBS-AGG-0 … LR-LBS-AGG.

Optimizations are switched on one at a time in the paper's order:

* AGG-0  — bare Theorem-1 loop
* AGG-1  — + Fast-Init fake corners (§3.2.1)
* AGG-2  — + leverage history (§3.2.2)
* AGG-3  — + adaptive h (§3.2.3)
* AGG    — + Monte-Carlo upper/lower bounds (§3.2.4)

Each step should lower the query cost at every error level, with the
first two (initialization + history) contributing the biggest drop.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import AggregateQuery, LrLbsAgg
from ..core.config import LrAggConfig
from ..datasets import is_category
from ..lbs import LrLbsInterface
from ..sampling import UniformSampler
from .harness import ExperimentTable, World, cost_to_reach, poi_world

__all__ = ["run"]


def run(
    world: Optional[World] = None,
    targets: Sequence[float] = (0.4, 0.3, 0.2, 0.15, 0.1),
    n_runs: int = 3,
    max_queries: int = 5000,
    k: int = 5,
    seed: int = 0,
    batch_size: int = 1,
) -> ExperimentTable:
    if world is None:
        world = poi_world()
    query = AggregateQuery.count(lambda attrs, _loc: attrs.get("category") == "school")
    truth = world.db.ground_truth_count(is_category("school"))
    sampler = UniformSampler(world.region)

    ladder = LrAggConfig.ladder()
    columns = {}
    for name, config in ladder.items():
        def make(s: int, _config=config):
            return LrLbsAgg(LrLbsInterface(world.db, k=k), sampler, query, _config, seed=s)
        columns[name] = cost_to_reach(make, truth, targets, n_runs, max_queries,
                                      seed, batch_size=batch_size)

    table = ExperimentTable(
        title="Figure 20 — query savings of the error-reduction strategies",
        headers=["rel. error"] + list(ladder),
        notes="Each added §3.2 technique should cut the cost at every level.",
    )
    for t in targets:
        table.add(t, *[columns[name][t] for name in ladder])
    return table
