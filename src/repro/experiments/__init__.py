"""Experiment modules regenerating every figure and table of §6.

Each module exposes ``run(...) -> ExperimentTable`` (Table 1 also returns
its ground truths).  ``python -m repro.experiments`` runs the whole
battery and prints the tables; individual benchmarks under
``benchmarks/`` wrap the same functions.
"""

from . import (
    fig11_voronoi_map,
    fig12_unbiasedness,
    fig13_weighted_sampling,
    fig14_count_schools,
    fig15_count_restaurants,
    fig16_sum_enrollment,
    fig17_avg_rating_austin,
    fig18_db_size,
    fig19_vary_k,
    fig20_ablation,
    fig21_localization,
    table1_online,
)
from .harness import (
    DEFAULT_TARGETS,
    SMALL_BOX,
    ExperimentTable,
    World,
    cost_to_reach,
    poi_world,
    user_world,
)

#: Registry used by the CLI runner and the benchmark suite.
ALL_EXPERIMENTS = {
    "fig11": fig11_voronoi_map.run,
    "fig12": fig12_unbiasedness.run,
    "fig13": fig13_weighted_sampling.run,
    "fig14": fig14_count_schools.run,
    "fig15": fig15_count_restaurants.run,
    "fig16": fig16_sum_enrollment.run,
    "fig17": fig17_avg_rating_austin.run,
    "fig18": fig18_db_size.run,
    "fig19": fig19_vary_k.run,
    "fig20": fig20_ablation.run,
    "fig21": fig21_localization.run,
    "table1": table1_online.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentTable",
    "World",
    "poi_world",
    "user_world",
    "cost_to_reach",
    "DEFAULT_TARGETS",
    "SMALL_BOX",
]
