"""Figure 15 — query cost vs relative error for COUNT(restaurants)."""

from __future__ import annotations

from typing import Optional

from ..core import AggregateQuery
from ..datasets import is_category
from .cost_vs_error import cost_vs_error_table
from .harness import ExperimentTable, World, poi_world

__all__ = ["run"]


def run(world: Optional[World] = None, n_runs: int = 3, max_queries: int = 4000,
        seed: int = 0, batch_size: int = 1, workers: int = 1) -> ExperimentTable:
    if world is None:
        world = poi_world()
    query = AggregateQuery.count(lambda attrs, _loc: attrs.get("category") == "restaurant")
    truth = world.db.ground_truth_count(is_category("restaurant"))
    return cost_vs_error_table(
        "Figure 15 — COUNT(restaurants): query cost vs relative error",
        world, query, truth, n_runs=n_runs, max_queries=max_queries, seed=seed,
        batch_size=batch_size, workers=workers,
    )
