"""Figure 17 — AVG(restaurant rating) in an Austin-like sub-region.

The aggregate carries a *location-dependent* selection condition (the
metro box).  LR estimators read locations straight off the answers; the
LNR estimator must invoke §4.3 position inference, making this the most
expensive figure — exactly as in the paper.
"""

from __future__ import annotations

from typing import Optional

from ..core import AggregateQuery
from ..datasets import is_category, subrect
from ..geometry import Rect
from ..sampling import UniformSampler
from .cost_vs_error import cost_vs_error_table
from .harness import ExperimentTable, World, poi_world

__all__ = ["run", "metro_box"]


def metro_box(world: World) -> Rect:
    """A metro-sized window with enough restaurants to average over."""
    return subrect(world.region, 0.25, 0.25, 0.75, 0.75)


def run(world: Optional[World] = None, n_runs: int = 2, max_queries: int = 4000,
        include_lnr: bool = True, seed: int = 0, batch_size: int = 1,
        workers: int = 1) -> ExperimentTable:
    if world is None:
        world = poi_world()
    box = metro_box(world)

    def in_metro(attrs, loc) -> bool:
        return (
            attrs.get("category") == "restaurant"
            and loc is not None
            and box.contains(loc)
        )

    query = AggregateQuery.avg("rating", in_metro, needs_location=True)
    truth = world.db.ground_truth_avg(
        "rating",
        lambda t: is_category("restaurant")(t) and box.contains(t.location),
    )
    return cost_vs_error_table(
        "Figure 17 — AVG(rating), restaurants in the metro box",
        world, query, truth,
        targets=(0.3, 0.2, 0.15, 0.1, 0.05),
        n_runs=n_runs, max_queries=max_queries,
        sampler=UniformSampler(box),
        include_lnr=include_lnr, seed=seed, batch_size=batch_size,
        workers=workers,
    )
