"""Run the experiment battery: ``python -m repro.experiments [names...]``.

Without arguments every figure/table is regenerated at the default
(laptop) scale; pass experiment names (``fig14 table1 ...``) to select.
``--batch-size N`` routes every estimator's sample loop through the
vectorized query-batch prefetch (keep the default of 1 to reproduce the
paper's query accounting exactly).  ``--workers N`` forks each cost
table's independent estimation runs across N processes (experiments
without a ``workers`` knob ignore it); results are identical at any
worker count.  ``--metrics-out PATH`` enables the :mod:`repro.obs`
registry around each experiment and writes its snapshot as JSON — to
``PATH`` when one experiment runs, to per-experiment siblings
(``name-<experiment>.json``) when several do.  Worker forks report
through the same registry (see ``_run_estimations``), so the snapshot
is complete at any ``--workers`` count.
"""

from __future__ import annotations

import inspect
import json
import os
import sys
import time

from . import ALL_EXPERIMENTS


def _metrics_path(base: str, name: str, many: bool) -> str:
    if not many:
        return base
    stem, ext = os.path.splitext(base)
    return f"{stem}-{name}{ext or '.json'}"


def main(argv: list[str]) -> int:
    batch_size = 1
    workers = 1
    metrics_out = None
    names: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--batch-size" or arg.startswith("--batch-size="):
            value = next(it, None) if arg == "--batch-size" else arg.split("=", 1)[1]
            try:
                batch_size = int(value)
            except (TypeError, ValueError):
                print("--batch-size needs an integer value")
                return 2
        elif arg == "--workers" or arg.startswith("--workers="):
            value = next(it, None) if arg == "--workers" else arg.split("=", 1)[1]
            try:
                workers = int(value)
            except (TypeError, ValueError):
                print("--workers needs an integer value")
                return 2
        elif arg == "--metrics-out" or arg.startswith("--metrics-out="):
            value = next(it, None) if arg == "--metrics-out" else arg.split("=", 1)[1]
            if not value:
                print("--metrics-out needs a file path")
                return 2
            metrics_out = value
        else:
            names.append(arg)
    if batch_size < 1:
        print("--batch-size must be >= 1")
        return 2
    if workers < 1:
        print("--workers must be >= 1")
        return 2
    names = names or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        start = time.time()
        fn = ALL_EXPERIMENTS[name]
        # fig11/fig21 have no estimation loop, hence no batch/worker
        # knobs; others opt into each knob by naming it.
        params = inspect.signature(fn).parameters
        kwargs = {}
        if "batch_size" in params:
            kwargs["batch_size"] = batch_size
        if "workers" in params:
            kwargs["workers"] = workers
        if metrics_out is not None:
            from ..obs import registry as obs

            with obs.collecting() as reg:
                out = fn(**kwargs)
            path = _metrics_path(metrics_out, name, len(names) > 1)
            with open(path, "w", encoding="utf-8") as f:
                json.dump(reg.to_dict(), f, indent=1, sort_keys=True)
            print(f"[metrics for {name} written to {path}]")
        else:
            out = fn(**kwargs)
        table = out[0] if isinstance(out, tuple) else out
        table.show()
        print(f"[{name} done in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
