"""Run the experiment battery: ``python -m repro.experiments [names...]``.

Without arguments every figure/table is regenerated at the default
(laptop) scale; pass experiment names (``fig14 table1 ...``) to select.
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        start = time.time()
        out = ALL_EXPERIMENTS[name]()
        table = out[0] if isinstance(out, tuple) else out
        table.show()
        print(f"[{name} done in {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
