"""Figure 21 — localization accuracy against two LNR services.

The paper localizes 200 POIs via Google Places (treated as LNR) and 200
WeChat users (whose positions the service obfuscates), and histograms
the distance between inferred and true positions: Places localizations
mostly land within ~20 m; WeChat's obfuscation sets an error floor near
its jitter radius, with a bounded tail.

We run §4.3 inference against one interface without obfuscation and one
with fixed per-tuple jitter, and report the same histogram.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core import LnrCellOracle, ObservationHistory, TupleLocalizer
from ..core.config import LnrAggConfig
from ..geometry import distance
from ..lbs import InterfaceSpec, ObfuscationModel
from ..sampling import UniformSampler
from .harness import ExperimentTable, World, poi_world

__all__ = ["run", "localization_errors"]


def localization_errors(
    world: World,
    n_targets: int = 30,
    obfuscation_sigma: float = 0.0,
    edge_error: float = 2e-3,
    k: int = 5,
    seed: int = 3,
) -> np.ndarray:
    """Distances between inferred and *true* positions for sampled tuples."""
    # The two services differ only in their declarative capability spec:
    # a Places-like plain LNR vs a WeChat-like obfuscating one.
    spec = InterfaceSpec(
        kind="lnr",
        k=k,
        obfuscation=(
            ObfuscationModel(sigma=obfuscation_sigma, seed=seed)
            if obfuscation_sigma > 0.0
            else None
        ),
    )
    api = spec.build(world.db)
    sampler = UniformSampler(world.region)
    history = ObservationHistory(api, enabled=True)
    config = LnrAggConfig(h=1, edge_error=edge_error)
    oracle = LnrCellOracle(history, sampler, config)
    localizer = TupleLocalizer(history, oracle, config)

    rng = np.random.default_rng(seed)
    tids = sorted(t.tid for t in world.db)
    chosen = rng.choice(len(tids), size=min(n_targets, len(tids)), replace=False)
    errors = []
    for idx in chosen:
        tid = tids[int(idx)]
        true_loc = world.db.get(tid).location
        # Seed the discovery from a query at the tuple's (effective)
        # vicinity — in the paper the experimenter stands near the target.
        seed_point = api.effective_location(tid)
        result = localizer.locate(tid, seed_point)
        errors.append(distance(result.location, true_loc))
    return np.array(errors)


def run(
    world: Optional[World] = None,
    n_targets: int = 25,
    obfuscation_sigma: float = 2.0,
    bins: Sequence[float] = (0.05, 0.1, 0.5, 1.0, 2.0, 4.0, 8.0, float("inf")),
    seed: int = 3,
) -> ExperimentTable:
    if world is None:
        world = poi_world()
    places = localization_errors(world, n_targets, 0.0, seed=seed)
    wechat = localization_errors(world, n_targets, obfuscation_sigma, seed=seed)

    table = ExperimentTable(
        title="Figure 21 — localization accuracy (percent of targets per error bin)",
        headers=["error ≤", "Places-like (no obfuscation)", f"WeChat-like (σ={obfuscation_sigma})"],
        notes="Obfuscation sets an error floor near its jitter radius.",
    )
    lo = 0.0
    for hi in bins:
        p_pct = 100.0 * float(np.mean((places > lo) & (places <= hi)))
        w_pct = 100.0 * float(np.mean((wechat > lo) & (wechat <= hi)))
        label = f"{hi:g}" if np.isfinite(hi) else f">{lo:g}"
        table.add(label, round(p_pct, 1), round(w_pct, 1))
        lo = hi
    return table
