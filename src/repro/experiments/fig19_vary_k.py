"""Figure 19 — query cost at fixed error vs the h used (1..k, adaptive).

With a top-k interface the estimator may exploit any top-h cells, h ≤ k.
The paper compares fixed choices against the §3.2.3 adaptive rule and
reports the adaptive strategy consistently saving ~10 % of queries over
the best fixed variant.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import AggregateQuery, LnrAggConfig, LnrLbsAgg, LrAggConfig, LrLbsAgg
from ..datasets import is_category
from ..lbs import LnrLbsInterface, LrLbsInterface
from ..sampling import UniformSampler
from .harness import ExperimentTable, World, cost_to_reach, poi_world

__all__ = ["run"]


def run(
    world: Optional[World] = None,
    hs: Sequence[int] = (1, 2, 3, 4, 5),
    k: int = 5,
    rel_error: float = 0.15,
    n_runs: int = 3,
    max_queries: int = 5000,
    include_lnr: bool = False,
    seed: int = 0,
    batch_size: int = 1,
) -> ExperimentTable:
    if world is None:
        world = poi_world()
    query = AggregateQuery.count(lambda attrs, _loc: attrs.get("category") == "school")
    truth = world.db.ground_truth_count(is_category("school"))
    sampler = UniformSampler(world.region)

    headers = ["h", "LR-LBS-AGG"]
    if include_lnr:
        headers.append("LNR-LBS-AGG")
    table = ExperimentTable(
        title=f"Figure 19 — query cost to reach rel. error {rel_error} vs h (k={k})",
        headers=headers,
        notes="'adaptive' uses the §3.2.3 per-tuple rule; it should beat fixed h.",
    )

    def lr_conf(h: Optional[int]):
        if h is None:
            return LrAggConfig(adaptive_h=True)
        return LrAggConfig(h=h, adaptive_h=False)

    def lnr_conf(h: Optional[int]):
        if h is None:
            return LnrAggConfig(adaptive_h=True)
        return LnrAggConfig(h=h, adaptive_h=False)

    for h in list(hs) + [None]:
        def make_lr(s: int, _h=h):
            return LrLbsAgg(
                LrLbsInterface(world.db, k=k), sampler, query, lr_conf(_h), seed=s
            )

        row = [
            "adaptive" if h is None else h,
            cost_to_reach(make_lr, truth, (rel_error,), n_runs, max_queries,
                          seed, batch_size=batch_size)[rel_error],
        ]
        if include_lnr:
            def make_lnr(s: int, _h=h):
                return LnrLbsAgg(
                    LnrLbsInterface(world.db, k=k), sampler, query, lnr_conf(_h), seed=s
                )
            row.append(
                cost_to_reach(make_lnr, truth, (rel_error,), n_runs, 6 * max_queries,
                              seed, batch_size=batch_size)[rel_error]
            )
        table.add(*row)
    return table
