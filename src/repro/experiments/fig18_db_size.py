"""Figure 18 — query cost at fixed error vs database size (25 %…100 %).

Sampling-based estimation is nearly insensitive to database scale; the
paper reports only a mild cost growth with POI count (denser data means
slightly busier Voronoi topology per cell).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core import AggregateQuery, LnrAggConfig, LnrLbsAgg, LrAggConfig, LrLbsAgg, LrLbsNno
from ..datasets import is_category
from ..lbs import LnrLbsInterface, LrLbsInterface
from ..sampling import UniformSampler
from .harness import ExperimentTable, World, cost_to_reach, poi_world

__all__ = ["run"]


def run(
    world: Optional[World] = None,
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    rel_error: float = 0.15,
    n_runs: int = 3,
    max_queries: int = 4000,
    include_lnr: bool = True,
    seed: int = 0,
    batch_size: int = 1,
) -> ExperimentTable:
    if world is None:
        world = poi_world()
    query = AggregateQuery.count(lambda attrs, _loc: attrs.get("category") == "school")
    sampler = UniformSampler(world.region)
    headers = ["fraction", "LR-LBS-NNO", "LR-LBS-AGG"]
    if include_lnr:
        headers.append("LNR-LBS-AGG")
    table = ExperimentTable(
        title=f"Figure 18 — query cost to reach rel. error {rel_error} vs DB fraction",
        headers=headers,
        notes="Sampling cost is largely flat in database size.",
    )

    for frac in fractions:
        rng = np.random.default_rng(1234)
        db = world.db if frac >= 1.0 else world.db.subsample(frac, rng)
        truth = db.ground_truth_count(is_category("school"))

        def make_nno(s: int, _db=db):
            return LrLbsNno(LrLbsInterface(_db, k=5), sampler, query, seed=s)

        def make_lr(s: int, _db=db):
            return LrLbsAgg(
                LrLbsInterface(_db, k=5), sampler, query,
                LrAggConfig(adaptive_h=True), seed=s,
            )

        def make_lnr(s: int, _db=db):
            return LnrLbsAgg(
                LnrLbsInterface(_db, k=5), sampler, query,
                LnrAggConfig(h=1), seed=s,
            )

        row = [
            frac,
            cost_to_reach(make_nno, truth, (rel_error,), n_runs, max_queries,
                          seed, batch_size=batch_size)[rel_error],
            cost_to_reach(make_lr, truth, (rel_error,), n_runs, max_queries,
                          seed, batch_size=batch_size)[rel_error],
        ]
        if include_lnr:
            row.append(
                cost_to_reach(make_lnr, truth, (rel_error,), n_runs, 4 * max_queries,
                              seed, batch_size=batch_size)[rel_error]
            )
        table.add(*row)
    return table
