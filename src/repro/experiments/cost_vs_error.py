"""Shared engine for the cost-vs-relative-error figures (14, 15, 16, 17).

Each figure fixes one aggregate and plots, for every algorithm, the query
cost needed to reach each relative-error level.  The paper's headline:
LR-LBS-AGG ≪ LR-LBS-NNO everywhere, with LNR-LBS-AGG in between despite
its blindfolded (rank-only) interface.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import (
    AggregateQuery,
    LnrAggConfig,
    LnrLbsAgg,
    LrAggConfig,
    LrLbsAgg,
    LrLbsNno,
)
from ..lbs import LnrLbsInterface, LrLbsInterface
from ..sampling import PointSampler, UniformSampler
from .harness import DEFAULT_TARGETS, ExperimentTable, World, cost_to_reach

__all__ = ["cost_vs_error_table"]


def cost_vs_error_table(
    title: str,
    world: World,
    query: AggregateQuery,
    truth: float,
    targets: Sequence[float] = DEFAULT_TARGETS,
    n_runs: int = 3,
    max_queries: int = 4000,
    lnr_max_queries: Optional[int] = None,
    k: int = 5,
    sampler: Optional[PointSampler] = None,
    include_lnr: bool = True,
    seed: int = 0,
    batch_size: int = 1,
    workers: int = 1,
) -> ExperimentTable:
    """Build the three-algorithm cost-vs-error table for one aggregate.

    ``batch_size`` routes every estimator's sample loop through the
    vectorized query-batch prefetch (see
    :func:`~repro.experiments.harness.cost_to_reach` for the accounting
    caveat; the default of 1 reproduces the paper's curves exactly).
    ``workers`` forks each algorithm's independent runs across that many
    processes — the tables are identical at any worker count.
    """
    sampler = sampler if sampler is not None else UniformSampler(world.region)

    def make_nno(s: int):
        return LrLbsNno(LrLbsInterface(world.db, k=k), sampler, query, seed=s)

    def make_lr(s: int):
        return LrLbsAgg(
            LrLbsInterface(world.db, k=k), sampler, query,
            LrAggConfig(adaptive_h=True), seed=s,
        )

    def make_lnr(s: int):
        return LnrLbsAgg(
            LnrLbsInterface(world.db, k=k), sampler, query,
            LnrAggConfig(h=1), seed=s,
        )

    nno = cost_to_reach(make_nno, truth, targets, n_runs, max_queries, seed,
                        batch_size=batch_size, workers=workers)
    lr = cost_to_reach(make_lr, truth, targets, n_runs, max_queries, seed,
                       batch_size=batch_size, workers=workers)
    headers = ["rel. error", "LR-LBS-NNO", "LR-LBS-AGG"]
    lnr = None
    if include_lnr:
        lnr = cost_to_reach(
            make_lnr, truth, targets, n_runs, lnr_max_queries or 4 * max_queries, seed,
            batch_size=batch_size, workers=workers,
        )
        headers.append("LNR-LBS-AGG")

    table = ExperimentTable(
        title=title,
        headers=headers,
        notes="Entries are median queries to stay within the error level "
              "(runs that never reach it are charged the full budget).",
    )
    for t in targets:
        row = [t, nno[t], lr[t]]
        if lnr is not None:
            row.append(lnr[t])
        table.add(*row)
    return table
