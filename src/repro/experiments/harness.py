"""Shared machinery for regenerating the paper's figures and tables.

Every ``figNN_*`` / ``table1_*`` module builds on three pieces:

* :func:`poi_world` / :func:`user_world` — deterministic synthetic
  datasets standing in for the paper's enriched OpenStreetMap snapshot
  and the WeChat/Weibo user bases (DESIGN.md §3);
* :func:`cost_to_reach` — the paper's main metric: the query cost after
  which the running estimate stays within a relative-error target
  (median over independent runs, as the paper averages over 25 runs);
* :class:`ExperimentTable` — a printable result table whose rows mirror
  the series the paper plots.

Scale: experiments default to laptop-size databases so the whole suite
(benchmarks included) runs in minutes.  The knobs are explicit — crank
``PoiConfig`` counts and ``n_runs`` up to approach the paper's scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.stopping import MaxQueries
from ..datasets import (
    SMALL_BOX,
    CityModel,
    PoiConfig,
    PopulationGrid,
    UserConfig,
    generate_poi_database,
    generate_user_database,
)
from ..geometry import Rect
from ..lbs import SpatialDatabase
from ..obs import registry as _obs
from ..stats import EstimationResult

__all__ = [
    "SMALL_BOX",
    "ExperimentTable",
    "World",
    "poi_world",
    "user_world",
    "DEFAULT_TARGETS",
    "cost_to_reach",
    "median_or_none",
]

# SMALL_BOX (the default experiment region) is re-exported from
# repro.datasets, which derives it from the RegionSpec named table.

#: Relative-error targets on the x-axis of Figures 13-17 and 20.
DEFAULT_TARGETS = (0.5, 0.4, 0.3, 0.2, 0.15, 0.1)


@dataclass
class ExperimentTable:
    """A printable experiment result (one per paper figure/table)."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add(self, *row) -> None:
        self.rows.append(list(row))

    def formatted(self) -> str:
        cells = [self.headers] + [
            [_fmt(c) for c in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.headers))]
        lines = [self.title, "-" * len(self.title)]
        for r, row in enumerate(cells):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if r == 0:
                lines.append("  ".join("-" * w for w in widths))
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)

    def show(self) -> None:
        print(self.formatted())

    def column(self, header: str) -> list:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


@dataclass
class World:
    """A generated dataset plus its spatial side-information."""

    db: SpatialDatabase
    region: Rect
    city_model: CityModel
    census: PopulationGrid


def poi_world(
    seed: int = 7,
    region: Rect = SMALL_BOX,
    config: Optional[PoiConfig] = None,
    n_cities: int = 15,
    census_noise: float = 0.1,
    base_sigma_fraction: float = 0.05,
    rural_fraction: float = 0.3,
) -> World:
    """The standard POI world of the offline experiments (§6.2).

    Clustering is milder than the continental-US extreme (where top-1
    cells span five orders of magnitude): the 1/p spread drives the
    estimator variance, and the default budgets here are laptop-scale.
    ``base_sigma_fraction``/``rural_fraction`` restore the paper's skew
    when cranked down (see fig11, which does exactly that).
    """
    rng = np.random.default_rng(seed)
    model = CityModel.generate(
        region, n_cities=n_cities, rng=rng,
        base_sigma_fraction=base_sigma_fraction, rural_fraction=rural_fraction,
    )
    if config is None:
        config = PoiConfig(n_restaurants=260, n_schools=160, n_banks=40, n_cafes=40)
    db = generate_poi_database(region, rng, config, model)
    census = PopulationGrid.from_city_model(model, nx=24, ny=18, noise=census_noise, rng=rng)
    return World(db, region, model, census)


def user_world(
    seed: int = 11,
    region: Rect = SMALL_BOX,
    config: Optional[UserConfig] = None,
    n_cities: int = 24,
) -> World:
    """A social-network user world (WeChat / Weibo style, §6.3)."""
    rng = np.random.default_rng(seed)
    model = CityModel.generate(
        region, n_cities=n_cities, rng=rng,
        base_sigma_fraction=0.05, rural_fraction=0.3,
    )
    if config is None:
        config = UserConfig(n_users=400, male_fraction=0.671)
    db = generate_user_database(region, rng, config, model)
    census = PopulationGrid.from_city_model(model, nx=24, ny=18, noise=0.1, rng=rng)
    return World(db, region, model, census)


def _run_estimations(
    make_estimator: Callable[[int], object],
    seeds: Sequence[int],
    max_queries: int,
    batch_size: int,
    workers: int,
) -> list[EstimationResult]:
    """The runs behind :func:`cost_to_reach`, optionally forked.

    Runs are fully independent (each owns its seed, interface, and
    budget), so fanning them across processes changes nothing about any
    single result — the fan-out is fork-based because
    ``make_estimator`` is typically a closure over a built world, which
    a forked child inherits without pickling.  Platforms without fork
    (and ``workers=1``) run sequentially; results always come back in
    seed order.
    """
    import multiprocessing as mp

    def run_one(s: int) -> EstimationResult:
        return make_estimator(s).run(MaxQueries(max_queries), batch_size=batch_size)

    if workers <= 1 or len(seeds) <= 1 or "fork" not in mp.get_all_start_methods():
        return [run_one(s) for s in seeds]
    ctx = mp.get_context("fork")
    # When a metrics registry is active here, each forked child collects
    # into a fresh one and its snapshot rides the result pipe back — the
    # fork waves stay metric-transparent at any worker count.
    parent_reg = _obs._active
    collect = parent_reg is not None

    def child(conn, s: int) -> None:
        try:
            if collect:
                with _obs.collecting() as reg:
                    result = run_one(s)
                conn.send(("ok", result, reg.to_dict()))
            else:
                conn.send(("ok", run_one(s), None))
        except Exception as exc:  # surface the real error in the parent
            conn.send(("error", repr(exc), None))
        finally:
            conn.close()

    results: list = [None] * len(seeds)
    for wave_start in range(0, len(seeds), workers):
        wave = list(enumerate(seeds))[wave_start : wave_start + workers]
        procs = []
        for pos, s in wave:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            p = ctx.Process(target=child, args=(child_conn, s), daemon=True)
            p.start()
            child_conn.close()
            procs.append((pos, parent_conn, p))
        for pos, conn, p in procs:
            try:
                kind, payload, snap = conn.recv()
            except EOFError:
                # The child died without reporting (crash, OOM kill).
                # The run is deterministic and owns nothing shared, so
                # recover by rerunning the seed right here — with the
                # parent's registry active, its metrics land directly
                # (no snapshot to merge).
                p.join()
                results[pos] = run_one(seeds[pos])
                if parent_reg is not None:
                    parent_reg.inc("runs_recovered_total")
                continue
            p.join()
            if kind == "error":
                raise RuntimeError(f"estimation run (seed {seeds[pos]}) failed: {payload}")
            if parent_reg is not None and snap is not None:
                parent_reg.merge(snap)
            results[pos] = payload
    return results


def cost_to_reach(
    make_estimator: Callable[[int], object],
    truth: float,
    targets: Sequence[float] = DEFAULT_TARGETS,
    n_runs: int = 3,
    max_queries: int = 4000,
    seed: int = 0,
    batch_size: int = 1,
    workers: int = 1,
) -> dict[float, Optional[float]]:
    """Median query cost to *stay* within each relative-error target.

    ``make_estimator(seed)`` must return a fresh estimator exposing the
    uniform driver signature ``run(until, batch_size=...) ->
    EstimationResult`` against a fresh interface (so budgets do not
    leak between runs).  Runs that never reach a target are charged
    ``max_queries`` (a conservative floor — the paper's plots simply
    stop at the budget).

    ``batch_size`` makes hot loops submit query batches through the
    vectorized engine instead of single points.  Since the lazy-reveal
    history split, every evaluated sample contributes exactly what it
    would sequentially; what shifts is payment *timing* — a batch's kNN
    queries are all paid before its first sample is traced, so
    trace-based cost readings run up to ``batch_size`` queries early
    and a query-bound run can stop up to a batch sooner.  Keep the
    default of 1 when reproducing the paper's cost curves exactly; use
    larger batches for throughput studies.

    ``workers`` fans the independent runs across forked processes (see
    :func:`_run_estimations`); the medians are identical at any worker
    count.
    """
    per_target: dict[float, list[float]] = {t: [] for t in targets}
    seeds = [seed + 1000 * run for run in range(n_runs)]
    for result in _run_estimations(
        make_estimator, seeds, max_queries, batch_size, workers
    ):
        for target in targets:
            reached = result.queries_to_reach(truth, target)
            per_target[target].append(float(reached) if reached is not None else float(max_queries))
    return {t: median_or_none(v) for t, v in per_target.items()}


def median_or_none(values: Sequence[float]) -> Optional[float]:
    vals = [v for v in values if v is not None]
    if not vals:
        return None
    return float(np.median(vals))
