"""Figure 11 — Voronoi decomposition of Starbucks-like POIs.

The paper plots the Voronoi diagram of every US Starbucks discovered by
the algorithm and highlights the enormous spread in cell sizes (< 1 km²
urban, ~10^5 km² rural) — the fact that motivates weighted sampling.
We regenerate the quantitative content: the distribution of top-1 cell
areas of the branded POIs, which must span orders of magnitude.
"""

from __future__ import annotations

import numpy as np

from ..datasets import is_brand
from ..geometry import full_voronoi_diagram
from .harness import ExperimentTable, World, poi_world

__all__ = ["run"]


def run(world: World | None = None, brand: str = "starbucks") -> ExperimentTable:
    if world is None:
        # Paper-grade skew: many sharp cities over a wide rural expanse
        # (the experiment worlds used for cost figures are milder).
        from ..datasets import PoiConfig
        world = poi_world(
            seed=7,
            config=PoiConfig(n_restaurants=1500, n_schools=50, n_banks=20, n_cafes=20),
            n_cities=25,
            base_sigma_fraction=0.012,
            rural_fraction=0.08,
        )
    sites = {
        t.tid: t.location for t in world.db if is_brand(brand)(t)
    }
    if len(sites) < 3:
        raise ValueError("too few branded POIs for a Voronoi decomposition")
    cells = full_voronoi_diagram(sites, world.region)
    areas = np.array([c.area() for c in cells.values()])

    table = ExperimentTable(
        title=f"Figure 11 — Voronoi cell areas of '{brand}' POIs (n={len(sites)})",
        headers=["statistic", "area"],
        notes="Heavy spread across orders of magnitude ⇒ weighted sampling pays off.",
    )
    table.add("min", float(areas.min()))
    table.add("p5", float(np.percentile(areas, 5)))
    table.add("median", float(np.median(areas)))
    table.add("p95", float(np.percentile(areas, 95)))
    table.add("max", float(areas.max()))
    table.add("max/min ratio", float(areas.max() / max(areas.min(), 1e-12)))
    table.add("p95/p5 ratio", float(np.percentile(areas, 95) / max(np.percentile(areas, 5), 1e-12)))
    return table
