"""Estimate a gender ratio through a rank-only interface (paper Table 1).

WeChat's "people nearby" returns ranked user profiles without
coordinates and with deliberately obfuscated positions.  The paper's
LNR-LBS-AGG estimates both the number of location-enabled users and the
male/female ratio from such queries (reporting 67.1 : 32.9 for WeChat).

The whole scenario is declarative here, down to the *population*: the
world is the registry's ``wechat-like-1m`` scenario (67.1% male, 10%
of accounts location-disabled and invisible) scaled to demo size, and
the service's capabilities — rank-only answers, per-user position
jitter, the profile fields WeChat shows — live in the ``InterfaceSpec``.
World + service + run serialize as ONE JSON document that pauses and
resumes bit-identically (demonstrated below mid-run).

Run:  python examples/wechat_gender_ratio.py
"""

import json

from repro import MaxQueries, ObfuscationModel, RegionSpec, Session, worlds
from repro.core import LnrAggConfig


def main() -> None:
    # The registry's WeChat-scale world, scaled down for a quick demo
    # (the full scenario is a million users over China-scale metros).
    # Spatial models are fractional, so swapping the region rescales the
    # same metro layout onto a demo-sized plane.
    world_spec = (
        worlds.get("wechat-like-1m")
        .with_size(300)
        .replace(region=RegionSpec.named("small"))
    )

    # WeChat-style service, fully in the spec: rank-only (lnr), top-10,
    # obfuscated positions, and only the profile fields WeChat shows.
    session = (
        Session(world_spec)
        .lnr(k=10, config=LnrAggConfig(h=1))
        .service(
            obfuscation=ObfuscationModel(sigma=1.0, seed=0),
            visible_attrs=("gender", "is_male"),
        )
    )
    budget = MaxQueries(6000)

    count_session = session.count().seed(1)
    print("spec:", count_session.spec.to_json()[:160], "...")

    # Pause the COUNT run mid-flight, push it through JSON, resume — the
    # state embeds the world spec, so nothing else is needed, and the
    # resumed run is bit-identical to never having stopped.
    run = count_session.start(budget)
    for checkpoint in run:
        if checkpoint.samples >= 25:
            break
    state = json.loads(json.dumps(run.to_state()))
    count_res = Session.resume(None, state).run()
    straight = count_session.run(budget)
    assert count_res.estimate == straight.estimate, "resume must be bit-identical"

    ratio_res = session.avg("is_male").seed(2).run(budget)

    db = session.world.db
    male_truth = db.ground_truth_avg("is_male")
    print(f"COUNT(users)  estimate: {count_res.estimate:7.1f}   truth: {len(db)}")
    print("              (paused at 25 samples, resumed from JSON — identical)")
    print(f"male fraction estimate: {ratio_res.estimate:7.3f}   truth: {male_truth:.3f}")
    m = ratio_res.estimate * 100
    print(f"estimated gender ratio: {m:.1f} : {100 - m:.1f}")
    print(f"queries: count={count_res.queries}, ratio={ratio_res.queries}")


if __name__ == "__main__":
    main()
