"""Estimate a gender ratio through a rank-only interface (paper Table 1).

WeChat's "people nearby" returns ranked user profiles without
coordinates and with deliberately obfuscated positions.  The paper's
LNR-LBS-AGG estimates both the number of location-enabled users and the
male/female ratio from such queries (reporting 67.1 : 32.9 for WeChat).

The whole scenario is declarative here: the service's capabilities —
rank-only answers, per-user position jitter, and the profile attributes
it actually shows — live in the ``InterfaceSpec`` embedded in the run's
``EstimationSpec``, so the run serializes to JSON, pauses, and resumes
bit-identically (demonstrated below mid-run).

Run:  python examples/wechat_gender_ratio.py
"""

import json

import numpy as np

from repro import MaxQueries, ObfuscationModel, Session, generate_user_database
from repro.core import LnrAggConfig
from repro.datasets import UserConfig
from repro.geometry import Rect


def main() -> None:
    region = Rect(0, 0, 400, 300)
    rng = np.random.default_rng(11)
    db = generate_user_database(
        region, rng, UserConfig(n_users=300, male_fraction=0.671)
    )

    # WeChat-style service, fully in the spec: rank-only (lnr), top-10,
    # obfuscated positions, and only the profile fields WeChat shows.
    session = (
        Session(db)
        .lnr(k=10, config=LnrAggConfig(h=1))
        .service(
            obfuscation=ObfuscationModel(sigma=1.0, seed=0),
            visible_attrs=("gender", "is_male", "location_enabled"),
        )
    )
    budget = MaxQueries(6000)

    count_session = session.count().seed(1)
    print("spec:", count_session.spec.to_json())

    # Pause the COUNT run mid-flight, push it through JSON, resume — the
    # resumed run is bit-identical to never having stopped.
    run = count_session.start(budget)
    for checkpoint in run:
        if checkpoint.samples >= 25:
            break
    state = json.loads(json.dumps(run.to_state()))
    count_res = Session.resume(db, state).run()
    straight = count_session.run(budget)
    assert count_res.estimate == straight.estimate, "resume must be bit-identical"

    ratio_res = session.avg("is_male").seed(2).run(budget)

    male_truth = db.ground_truth_avg("is_male")
    print(f"COUNT(users)  estimate: {count_res.estimate:7.1f}   truth: {len(db)}")
    print("              (paused at 25 samples, resumed from JSON — identical)")
    print(f"male fraction estimate: {ratio_res.estimate:7.3f}   truth: {male_truth:.3f}")
    m = ratio_res.estimate * 100
    print(f"estimated gender ratio: {m:.1f} : {100 - m:.1f}")
    print(f"queries: count={count_res.queries}, ratio={ratio_res.queries}")


if __name__ == "__main__":
    main()
