"""Estimate a gender ratio through a rank-only interface (paper Table 1).

WeChat's "people nearby" returns ranked user profiles without
coordinates and with deliberately obfuscated positions.  The paper's
LNR-LBS-AGG estimates both the number of location-enabled users and the
male/female ratio from 10000 such queries (reporting 67.1 : 32.9 for
WeChat).  Same pipeline here, against the simulated service.

Obfuscation is an interface-construction knob the declarative spec does
not model, so this example stays on the driver classes — note they share
the session API's stopping rules and streaming machinery.

Run:  python examples/wechat_gender_ratio.py
"""

import numpy as np

from repro import (
    AggregateQuery,
    LnrAggConfig,
    LnrLbsAgg,
    LnrLbsInterface,
    MaxQueries,
    ObfuscationModel,
    UniformSampler,
    generate_user_database,
)
from repro.datasets import UserConfig
from repro.geometry import Rect


def main() -> None:
    region = Rect(0, 0, 400, 300)
    rng = np.random.default_rng(11)
    db = generate_user_database(
        region, rng, UserConfig(n_users=300, male_fraction=0.671)
    )

    # WeChat-style service: rank-only answers, obfuscated positions.
    obfuscation = ObfuscationModel(sigma=1.0, seed=0)
    sampler = UniformSampler(region)
    budget = MaxQueries(6000)

    count_api = LnrLbsInterface(db, k=10, obfuscation=obfuscation)
    count_agg = LnrLbsAgg(
        count_api, sampler, AggregateQuery.count(), LnrAggConfig(h=1), seed=1
    )
    count_res = count_agg.run(budget)

    ratio_api = LnrLbsInterface(db, k=10, obfuscation=obfuscation)
    ratio_agg = LnrLbsAgg(
        ratio_api, sampler, AggregateQuery.avg("is_male"), LnrAggConfig(h=1), seed=2
    )
    ratio_res = ratio_agg.run(budget)

    male_truth = db.ground_truth_avg("is_male")
    print(f"COUNT(users)  estimate: {count_res.estimate:7.1f}   truth: {len(db)}")
    print(f"male fraction estimate: {ratio_res.estimate:7.3f}   truth: {male_truth:.3f}")
    m = ratio_res.estimate * 100
    print(f"estimated gender ratio: {m:.1f} : {100 - m:.1f}")
    print(f"queries: count={count_res.queries}, ratio={ratio_res.queries}")


if __name__ == "__main__":
    main()
