"""Infer exact tuple positions from ranked answers (paper §4.3, Fig 21).

A rank-only interface still leaks locations: three bisector directions
at a Voronoi vertex pin down the ray toward the tuple, and two vertices
triangulate it.  Against an obfuscating service the method converges to
the *jittered* position, so the residual error equals the obfuscation
radius — the paper's WeChat finding.

Run:  python examples/localize_users.py
"""

import numpy as np

from repro import (
    LnrAggConfig,
    LnrLbsInterface,
    ObfuscationModel,
    ObservationHistory,
    UniformSampler,
    generate_user_database,
)
from repro.core import LnrCellOracle, TupleLocalizer
from repro.datasets import UserConfig
from repro.geometry import Rect, distance


def localize_some(db, region, obfuscation, n=10):
    api = LnrLbsInterface(db, k=5, obfuscation=obfuscation)
    history = ObservationHistory(api)
    config = LnrAggConfig(h=1, edge_error=2e-3)
    oracle = LnrCellOracle(history, UniformSampler(region), config)
    localizer = TupleLocalizer(history, oracle, config)

    errors = []
    for tid in sorted(db.locations())[:n]:
        true_loc = db.get(tid).location
        seed = api.effective_location(tid)  # "standing near" the target
        result = localizer.locate(tid, seed)
        errors.append(distance(result.location, true_loc))
    return np.array(errors), api.queries_used


def main() -> None:
    region = Rect(0, 0, 400, 300)
    rng = np.random.default_rng(21)
    db = generate_user_database(region, rng, UserConfig(n_users=200))

    plain, cost1 = localize_some(db, region, obfuscation=None)
    jitter = ObfuscationModel(sigma=2.0, seed=3)
    obfus, cost2 = localize_some(db, region, obfuscation=jitter)

    print("localization error (km) — 400 x 300 km plane, 10 targets each")
    print(f"  honest service   : median {np.median(plain):7.4f}  max {plain.max():7.4f}  ({cost1} queries)")
    print(f"  obfuscated (σ=2) : median {np.median(obfus):7.4f}  max {obfus.max():7.4f}  ({cost2} queries)")
    print("obfuscation sets an error floor near its jitter radius —")
    print("position hiding works only as well as the noise injected.")


if __name__ == "__main__":
    main()
