"""Count branded POIs through a pass-through filter (paper Table 1).

The paper's flagship demo estimates the number of Starbucks in the US
through Google Places with 5000 queries, landing within 5 % of the
company's published store count.  This example reproduces the setup on
the synthetic substrate through the ``repro.api`` facade: the selection
condition ``brand = starbucks`` is pushed into the service (like a
Places keyword filter, ``pass_through=True``), and the unconditioned
COUNT of the filtered view is estimated.

Run:  python examples/starbucks_count.py
"""

import numpy as np

from repro import LrAggConfig, MaxQueries, PoiConfig, Session, generate_poi_database, is_brand
from repro.datasets import CityModel
from repro.geometry import Rect


def main() -> None:
    region = Rect(0, 0, 1000, 700)  # a USA-shaped plane, in km
    rng = np.random.default_rng(2015)
    cities = CityModel.generate(region, n_cities=30, rng=rng,
                                base_sigma_fraction=0.02, rural_fraction=0.15)
    db = generate_poi_database(
        region, rng,
        PoiConfig(n_restaurants=1200, n_schools=100, n_banks=50, n_cafes=50),
        cities,
    )
    truth = db.ground_truth_count(is_brand("starbucks"))

    # Pass-through condition: the service itself filters by brand, so
    # the estimator sees a smaller hidden database behind the same
    # interface.  is_brand() returns a serializable condition, so the
    # whole spec still round-trips through JSON.
    session = (
        Session(db)
        .lr(k=10, config=LrAggConfig(adaptive_h=True))
        .count(is_brand("starbucks"), pass_through=True)
        .seed(5)
    )
    result = session.run(MaxQueries(5000))

    print(f"COUNT(starbucks) estimate: {result.estimate:7.1f}")
    print(f"published ground truth   : {truth:7d}")
    print(f"relative error           : {result.relative_error(truth):7.3f}")
    print(f"queries spent            : {result.queries:7d} (budget 5000)")


if __name__ == "__main__":
    main()
