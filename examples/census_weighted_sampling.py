"""External-knowledge weighted sampling (paper §5.2, Fig 13).

POI density follows population; so does the optimal query distribution.
Sampling query points proportionally to a census raster flattens the
spread of inverse selection probabilities and cuts the query cost at
any target error — without ever biasing the estimate, even when the
raster is noisy.

The two strategies differ by exactly one fluent call on an otherwise
shared ``repro.api`` session: ``.uniform()`` vs ``.census_weighted()``.

Run:  python examples/census_weighted_sampling.py
"""

from types import SimpleNamespace

import numpy as np

from repro import (
    MaxQueries,
    PoiConfig,
    PopulationGrid,
    Session,
    generate_poi_database,
    is_category,
)
from repro.datasets import CityModel
from repro.geometry import Rect


def run(session: Session, truth: int, seeds, budget: int = 2500):
    errs = []
    for seed in seeds:
        res = session.seed(seed).run(MaxQueries(budget))
        errs.append(res.relative_error(truth))
    return np.array(errs)


def main() -> None:
    region = Rect(0, 0, 400, 300)
    rng = np.random.default_rng(19)
    cities = CityModel.generate(region, n_cities=12, rng=rng,
                                base_sigma_fraction=0.02, rural_fraction=0.12)
    db = generate_poi_database(
        region, rng,
        PoiConfig(n_restaurants=100, n_schools=140, n_banks=10, n_cafes=10),
        cities,
    )
    census = PopulationGrid.from_city_model(
        cities, nx=24, ny=18, noise=0.2, rng=rng  # noisy external knowledge
    )
    # Anything with .db (+ .census for weighted sampling) is a world.
    world = SimpleNamespace(db=db, census=census)
    truth = db.ground_truth_count(is_category("school"))

    base = Session(world).lr(k=5).count(is_category("school"))
    seeds = range(5)
    uniform_errs = run(base.uniform(), truth, seeds)
    weighted_errs = run(base.census_weighted(), truth, seeds)

    print("COUNT(schools), 2500-query budget, 5 runs each:")
    print(f"  uniform sampling : rel-err mean {uniform_errs.mean():.3f}  runs {np.round(uniform_errs, 3)}")
    print(f"  census-weighted  : rel-err mean {weighted_errs.mean():.3f}  runs {np.round(weighted_errs, 3)}")
    print("weighted sampling concentrates queries where tuples (and tiny")
    print("Voronoi cells) are — same unbiasedness, lower variance.")


if __name__ == "__main__":
    main()
