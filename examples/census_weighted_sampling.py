"""External-knowledge weighted sampling (paper §5.2, Fig 13).

POI density follows population; so does the optimal query distribution.
Sampling query points proportionally to a census raster flattens the
spread of inverse selection probabilities and cuts the query cost at
any target error — without ever biasing the estimate, even when the
raster is noisy.

Worlds from the scenario registry carry their census raster with them
(rasterized from the spatial model's own density, with configurable
noise — see ``CensusSpec``), so the two strategies differ by exactly
one fluent call on an otherwise shared ``repro.api`` session:
``.uniform()`` vs ``.census_weighted()``.

Run:  python examples/census_weighted_sampling.py
"""

import numpy as np

from repro import MaxQueries, Session, worlds
from repro.datasets import is_category


def run(session: Session, truth: int, seeds, budget: int = 2500):
    errs = []
    for seed in seeds:
        res = session.seed(seed).run(MaxQueries(budget))
        errs.append(res.relative_error(truth))
    return np.array(errs)


def main() -> None:
    # The registry's clustered world, with the spatial model swapped for
    # a sharper one (specs are frozen values — surgery is a .replace):
    # a dozen tight metros and a thin rural floor is where weighted
    # sampling visibly pays; the noisy census raster rides along
    # (external knowledge is never perfect).
    spec = worlds.get("paper/clustered").with_size(260).replace(
        spatial=worlds.ZipfHotspots(n_hotspots=12, sigma_fraction=0.006,
                                    background=0.1),
        census=worlds.CensusSpec(nx=24, ny=18, noise=0.2),
    )
    world = spec.build()
    truth = world.db.ground_truth_count(is_category("school"))

    base = Session(world).lr(k=5).count(is_category("school"))
    seeds = range(5)
    uniform_errs = run(base.uniform(), truth, seeds)
    weighted_errs = run(base.census_weighted(), truth, seeds)

    print("COUNT(schools), 2500-query budget, 5 runs each:")
    print(f"  uniform sampling : rel-err mean {uniform_errs.mean():.3f}  runs {np.round(uniform_errs, 3)}")
    print(f"  census-weighted  : rel-err mean {weighted_errs.mean():.3f}  runs {np.round(weighted_errs, 3)}")
    print("weighted sampling concentrates queries where tuples (and tiny")
    print("Voronoi cells) are — same unbiasedness, lower variance.")


if __name__ == "__main__":
    main()
