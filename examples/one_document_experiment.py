"""An entire experiment as ONE serializable JSON document.

The three declarative layers compose: a ``WorldSpec`` (the hidden
population — region, spatial model, attribute schema, census,
generation seed), an ``InterfaceSpec`` (the service's capability
surface), and the ``EstimationSpec`` (estimator, sampler, aggregate,
run seed).  Embedding the world in the estimation spec makes the JSON
self-contained: mail it to a colleague, check it into a repo, or log it
at a service front door — ``Session.from_spec(doc)`` rebuilds the
world, the service, and the run, and lands on the *bit-identical*
estimate.

Run:  python examples/one_document_experiment.py
"""

import json

from repro import MaxQueries, RankingSpec, Session, worlds
from repro.datasets import is_category


def main() -> None:
    # A prominence-ranked Places-style scenario over the registry's
    # hotspot world, scaled to demo size.
    world_spec = worlds.get("paper/places-prominence").with_size(400)
    session = (
        Session(world_spec)
        .lr(k=10)
        .service(ranking=RankingSpec.prominence(
            "popularity", weight_distance=0.7, weight_static=0.3,
            distance_cap=40.0))
        .count(is_category("restaurant"))
        .seed(13)
        .batch(16)
    )

    # THE document: world + interface + estimation, nothing else needed.
    doc = session.spec.to_json()
    print(f"experiment document: {len(doc)} bytes of plain JSON")
    layers = json.loads(doc)
    print("  world    :", layers["world"]["name"],
          f"(n={layers['world']['n']}, spatial={layers['world']['spatial']['kind']})")
    print("  interface:", layers["interface"]["kind"],
          f"top-{layers['interface']['k']},",
          layers["interface"]["ranking"]["policy"], "ranking")
    print("  run      :", layers["method"], "/", layers["aggregate"]["kind"],
          "where", layers["aggregate"]["where"])

    original = session.run(MaxQueries(1500))
    reproduced = Session.from_spec(doc).run(MaxQueries(1500))

    print(f"original   : estimate {original.estimate:9.3f} "
          f"({original.queries} queries, {original.samples} samples)")
    print(f"reproduced : estimate {reproduced.estimate:9.3f} "
          f"({reproduced.queries} queries, {reproduced.samples} samples)")
    assert reproduced.estimate == original.estimate
    assert reproduced.queries == original.queries
    print("bit-identical: the document alone reproduces the run.")


if __name__ == "__main__":
    main()
