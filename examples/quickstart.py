"""Quickstart: estimate COUNT(*) over a hidden LBS with LR-LBS-AGG.

Picks a world from the scenario registry (``repro.worlds``), hides it
behind a Google-Maps-style kNN interface, and estimates the total
number of POIs with the paper's unbiased estimator — comparing against
the (normally unknowable) ground truth.  Everything runs through the
high-level ``repro.api`` session facade: describe the run fluently,
stop on a composable rule, stream checkpoints if you want progress.

Because the world itself is a declarative spec, the session's JSON is a
*complete* experiment — world, interface, and run in one document.

Run:  python examples/quickstart.py
"""

from repro import MaxQueries, Session, TargetRelativeCI, worlds


def main() -> None:
    # 1. A hidden database from the scenario registry: the paper's
    #    clustered-POI shape (Zipf-weighted metro areas over a rural
    #    floor), scaled to ~500 tuples for a quick demo.  Try any name
    #    from worlds.names() — "ring-city", "mixture-metro-rural", ...
    world_spec = worlds.get("paper/clustered").with_size(500)

    # 2. Describe the estimation: a top-5 location-returning interface,
    #    uniform sampling, COUNT(*).  Passing the *spec* (not a built
    #    database) embeds the world in the session's own spec —
    #    session.spec.to_json() reproduces the entire experiment.
    session = Session(world_spec).lr(k=5).count().seed(42)
    truth = len(session.world.db)

    # 3. Run until 2000 queries are spent or the 95% CI tightens to
    #    ±10% of the estimate, whichever happens first.
    result = session.run(MaxQueries(2000) | TargetRelativeCI(0.10))

    print(f"estimate : {result.estimate:8.1f}")
    print(f"truth    : {truth:8d}")
    print(f"rel. err : {result.relative_error(truth):8.3f}")
    print(f"queries  : {result.queries:8d}  samples: {result.samples}")
    lo, hi = result.confidence_interval(0.95)
    print(f"95% CI   : [{lo:.1f}, {hi:.1f}]")

    # 4. The same run as a stream: pause at 40 samples, persist, resume.
    #    The state embeds the world spec, so resume needs nothing else.
    run = session.start(MaxQueries(2000))
    for checkpoint in run:
        if checkpoint.samples >= 40:
            break
    state = run.to_state()  # JSON-serializable; survives a process restart
    resumed = Session.resume(None, state).run()
    print(f"paused at 40 samples, resumed to {resumed.samples} — "
          f"estimate {resumed.estimate:.1f} (bit-identical to a straight run)")


if __name__ == "__main__":
    main()
