"""Quickstart: estimate COUNT(*) over a hidden LBS with LR-LBS-AGG.

Builds a synthetic POI database, hides it behind a Google-Maps-style
kNN interface, and estimates the total number of POIs with the paper's
unbiased estimator — comparing against the (normally unknowable)
ground truth.  Everything runs through the high-level ``repro.api``
session facade: describe the run fluently, stop on a composable rule,
stream checkpoints if you want progress.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MaxQueries, PoiConfig, Session, TargetRelativeCI, generate_poi_database
from repro.datasets import CityModel
from repro.geometry import Rect


def main() -> None:
    # 1. A hidden database: ~500 POIs on a 400 x 300 km plane with mild
    #    urban clustering (crank base_sigma_fraction down for US-grade
    #    skew — and switch to .census_weighted(), see the census
    #    example, because uniform sampling then needs far more queries).
    region = Rect(0, 0, 400, 300)
    rng = np.random.default_rng(7)
    cities = CityModel.generate(
        region, n_cities=12, rng=rng, base_sigma_fraction=0.06, rural_fraction=0.35
    )
    db = generate_poi_database(
        region, rng,
        PoiConfig(n_restaurants=260, n_schools=160, n_banks=40, n_cafes=40),
        cities,
    )

    # 2. Describe the estimation: a top-5 location-returning interface,
    #    uniform sampling, COUNT(*).  The session is a frozen spec —
    #    session.spec.to_json() is what a service front door would log.
    session = Session(db).lr(k=5).count().seed(42)

    # 3. Run until 2000 queries are spent or the 95% CI tightens to
    #    ±10% of the estimate, whichever happens first.
    result = session.run(MaxQueries(2000) | TargetRelativeCI(0.10))

    print(f"estimate : {result.estimate:8.1f}")
    print(f"truth    : {len(db):8d}")
    print(f"rel. err : {result.relative_error(len(db)):8.3f}")
    print(f"queries  : {result.queries:8d}  samples: {result.samples}")
    lo, hi = result.confidence_interval(0.95)
    print(f"95% CI   : [{lo:.1f}, {hi:.1f}]")

    # 4. The same run as a stream: pause at 40 samples, persist, resume.
    run = session.start(MaxQueries(2000))
    for checkpoint in run:
        if checkpoint.samples >= 40:
            break
    state = run.to_state()  # JSON-serializable; survives a process restart
    resumed = Session.resume(db, state).run()
    print(f"paused at 40 samples, resumed to {resumed.samples} — "
          f"estimate {resumed.estimate:.1f} (bit-identical to a straight run)")


if __name__ == "__main__":
    main()
