"""Quickstart: estimate COUNT(*) over a hidden LBS with LR-LBS-AGG.

Builds a synthetic POI database, hides it behind a Google-Maps-style
kNN interface, and estimates the total number of POIs with the paper's
unbiased estimator — comparing against the (normally unknowable)
ground truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AggregateQuery,
    CityModel,
    LrAggConfig,
    LrLbsAgg,
    LrLbsInterface,
    PoiConfig,
    UniformSampler,
    generate_poi_database,
)
from repro.geometry import Rect


def main() -> None:
    # 1. A hidden database: ~500 POIs on a 400 x 300 km plane with mild
    #    urban clustering (crank base_sigma_fraction down for US-grade
    #    skew — and switch to GridWeightedSampler, see the census
    #    example, because uniform sampling then needs far more queries).
    region = Rect(0, 0, 400, 300)
    rng = np.random.default_rng(7)
    cities = CityModel.generate(
        region, n_cities=12, rng=rng, base_sigma_fraction=0.06, rural_fraction=0.35
    )
    db = generate_poi_database(
        region, rng,
        PoiConfig(n_restaurants=260, n_schools=160, n_banks=40, n_cafes=40),
        cities,
    )

    # 2. The only access path: a top-5 kNN interface returning locations.
    api = LrLbsInterface(db, k=5)

    # 3. Estimate COUNT(*) with 2000 queries.
    agg = LrLbsAgg(
        api,
        UniformSampler(region),
        AggregateQuery.count(),
        LrAggConfig(adaptive_h=False),
        seed=42,
    )
    result = agg.run(max_queries=2000)

    print(f"estimate : {result.estimate:8.1f}")
    print(f"truth    : {len(db):8d}")
    print(f"rel. err : {result.relative_error(len(db)):8.3f}")
    print(f"queries  : {result.queries:8d}  samples: {result.samples}")
    lo, hi = result.ci(0.95)
    print(f"95% CI   : [{lo:.1f}, {hi:.1f}]")


if __name__ == "__main__":
    main()
